"""Simulated message-passing fabric for distributed LP.

The paper's headline argument for label propagation over disjoint-set
CC is that LP's SpMV structure scales to distributed memory (Section I
and VII).  This package demonstrates that claim on a simulated BSP
(bulk-synchronous parallel) fabric: ranks exchange labelled-vertex
messages between supersteps, and the fabric counts every message and
byte so communication volume — the quantity that decides distributed
performance — is measured exactly.

No real networking: deliveries are deterministic (per-rank FIFO by
sending rank, then send order), which makes distributed runs exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CommStats", "Fabric"]

#: Bytes per (vertex id, label) message — 4-byte ids + 4-byte labels,
#: matching the paper's data sizes.
MESSAGE_BYTES = 8


@dataclass
class CommStats:
    """Aggregate communication counters for one distributed run."""

    supersteps: int = 0
    messages: int = 0
    bytes: int = 0
    max_rank_messages_per_step: int = 0

    def record_step(self, per_rank_messages: list[int]) -> None:
        self.supersteps += 1
        step_total = int(sum(per_rank_messages))
        self.messages += step_total
        self.bytes += step_total * MESSAGE_BYTES
        if per_rank_messages:
            self.max_rank_messages_per_step = max(
                self.max_rank_messages_per_step,
                int(max(per_rank_messages)))


class Fabric:
    """A deterministic BSP message fabric between ``num_ranks`` ranks.

    Usage per superstep::

        fabric.send(src_rank, dst_rank, vertices, labels)
        ...
        inboxes = fabric.exchange()   # delivers + clears + counts
    """

    def __init__(self, num_ranks: int) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.num_ranks = num_ranks
        self.stats = CommStats()
        self._outboxes: list[list[tuple[int, np.ndarray, np.ndarray]]] = [
            [] for _ in range(num_ranks)]

    def send(self, src: int, dst: int,
             vertices: np.ndarray, labels: np.ndarray) -> None:
        """Queue (vertex, label) pairs from ``src`` to ``dst``."""
        if not (0 <= src < self.num_ranks):
            raise ValueError(f"bad source rank {src}")
        if not (0 <= dst < self.num_ranks):
            raise ValueError(f"bad destination rank {dst}")
        vertices = np.asarray(vertices, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        if vertices.shape != labels.shape:
            raise ValueError("vertices and labels must align")
        if vertices.size == 0:
            return
        if src == dst:
            raise ValueError("local updates must not use the fabric")
        self._outboxes[dst].append((src, vertices, labels))

    def exchange(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Complete the superstep: deliver everything, return inboxes.

        Returns one ``(vertices, labels)`` pair per rank (concatenated
        over senders in rank order).  Counts the step in ``stats``.
        """
        sent_by_rank = [0] * self.num_ranks
        inboxes: list[tuple[np.ndarray, np.ndarray]] = []
        for dst in range(self.num_ranks):
            queue = sorted(self._outboxes[dst], key=lambda t: t[0])
            if queue:
                vs = np.concatenate([q[1] for q in queue])
                ls = np.concatenate([q[2] for q in queue])
            else:
                vs = np.empty(0, dtype=np.int64)
                ls = np.empty(0, dtype=np.int64)
            for src, v, _ in queue:
                sent_by_rank[src] += int(v.size)
            inboxes.append((vs, ls))
            self._outboxes[dst] = []
        self.stats.record_step(sent_by_rank)
        return inboxes

    def pending_messages(self) -> int:
        """Messages queued but not yet exchanged."""
        return sum(v.size for box in self._outboxes
                   for _, v, _ in box)

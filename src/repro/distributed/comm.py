"""Simulated message-passing fabric for distributed CC.

The paper's headline argument for label propagation over disjoint-set
CC is that LP's SpMV structure scales to distributed memory (Section I
and VII), and the follow-up literature on distributed CC shows that
*network bandwidth* is the quantity that decides distributed
performance.  This fabric therefore models the wire precisely: ranks
exchange labelled-vertex updates between BSP supersteps and the fabric
accounts every update, wire message and modeled byte, so communication
volume is measured exactly rather than estimated.

Two accounting regimes, selected by ``combining``:

* ``combining=False`` — the naive per-pair regime (the historical
  fabric): every queued ``(vertex, label)`` update is its own wire
  message with its own header.  Kept for A/B runs; final labels are
  bit-identical because receivers min-merge either way.
* ``combining=True`` — bandwidth-optimized: per destination, the
  sender min-combines its queued updates (one update per ``(vertex,
  dst)`` per superstep, keeping only the smallest label — exactly a
  Pregel combiner) and ships them as a single batched envelope per
  ``(src, dst)`` pair with one modeled header.  Envelope payloads are
  priced with a delta/varint byte model: vertex ids are sorted,
  delta-encoded and varint-sized, labels varint-sized.

No real networking: deliveries are deterministic (per-rank FIFO by
sending rank, then send order; combined envelopes sorted by vertex
id), which makes distributed runs exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

__all__ = ["CommStats", "Fabric", "varint_bytes",
           "MESSAGE_BYTES", "ENVELOPE_HEADER_BYTES"]

#: Naive bytes per (vertex id, label) update — 4-byte ids + 4-byte
#: labels, matching the paper's data sizes.  The ``bytes`` counter
#: keeps this historical accounting in both regimes.
MESSAGE_BYTES = 8

#: Modeled per-wire-message header (rank ids, superstep tag, payload
#: length — an MPI-ish envelope).  Charged once per envelope in the
#: combining regime, once per update in the naive regime.
ENVELOPE_HEADER_BYTES = 16


def varint_bytes(values: np.ndarray) -> int:
    """Total LEB128-style varint bytes to encode ``values`` (all >= 0).

    One byte per 7 payload bits: values below 128 cost 1 byte, below
    16384 cost 2, and so on.  Exact and fully vectorized (no float
    log2 near-power-of-two hazards).
    """
    v = np.asarray(values, dtype=np.int64)
    if v.size == 0:
        return 0
    if v.min() < 0:
        raise ValueError("varint model is for non-negative values")
    sizes = np.ones(v.shape, dtype=np.int64)
    for k in range(1, 9):
        sizes += v >= (1 << (7 * k))
    return int(sizes.sum())


def _envelope_payload_bytes(vertices: np.ndarray,
                            labels: np.ndarray) -> int:
    """Modeled payload of one combined envelope.

    ``vertices`` arrive sorted ascending (the combiner sorts), so they
    are delta-encoded — first id absolute, the rest as gaps — and the
    labels ride along varint-coded.
    """
    if vertices.size == 0:
        return 0
    deltas = np.empty(vertices.size, dtype=np.int64)
    deltas[0] = vertices[0]
    np.subtract(vertices[1:], vertices[:-1], out=deltas[1:])
    return varint_bytes(deltas) + varint_bytes(labels)


@dataclass
class CommStats:
    """Aggregate communication counters for one distributed run.

    ``updates`` counts the ``(vertex, label)`` payload entries actually
    delivered; ``messages`` counts *wire* messages — equal to updates
    in the naive regime, one per batched ``(src, dst)`` envelope in the
    combining regime.  ``bytes`` keeps the historical naive accounting
    (8 bytes per delivered update); ``modeled_bytes`` is the
    header + delta/varint wire model, reported separately so benchmarks
    can compare message counts and bandwidth independently.
    """

    supersteps: int = 0
    messages: int = 0
    updates: int = 0
    combined_updates: int = 0      # updates removed by the combiner
    bytes: int = 0                 # naive 8-byte-per-update accounting
    header_bytes: int = 0
    payload_bytes: int = 0
    max_rank_messages_per_step: int = 0
    max_rank_bytes_per_step: int = 0   # modeled bytes, bottleneck rank

    @property
    def modeled_bytes(self) -> int:
        """Wire bytes under the envelope + delta/varint model."""
        return self.header_bytes + self.payload_bytes

    def as_dict(self) -> dict[str, int]:
        """Plain-dict dump (includes the derived ``modeled_bytes``)."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["modeled_bytes"] = self.modeled_bytes
        return out

    def record_step(self, per_rank_messages: list[int],
                    per_rank_bytes: list[int]) -> None:
        """Close one superstep: track the bottleneck-rank maxima."""
        self.supersteps += 1
        if per_rank_messages:
            self.max_rank_messages_per_step = max(
                self.max_rank_messages_per_step,
                int(max(per_rank_messages)))
        if per_rank_bytes:
            self.max_rank_bytes_per_step = max(
                self.max_rank_bytes_per_step,
                int(max(per_rank_bytes)))


class Fabric:
    """A deterministic BSP message fabric between ``num_ranks`` ranks.

    Usage per superstep::

        fabric.send(src_rank, dst_rank, vertices, labels)
        ...
        inboxes = fabric.exchange()   # delivers + clears + counts

    ``combining=True`` enables sender-side min-combining and batched
    per-``(src, dst)`` envelopes (see module docstring).  Receivers
    min-merge, so the regimes produce bit-identical final labels.
    """

    def __init__(self, num_ranks: int, *, combining: bool = False) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.num_ranks = num_ranks
        self.combining = combining
        self.stats = CommStats()
        self._outboxes: list[list[tuple[int, np.ndarray, np.ndarray]]] = [
            [] for _ in range(num_ranks)]

    def send(self, src: int, dst: int,
             vertices: np.ndarray, labels: np.ndarray) -> None:
        """Queue (vertex, label) updates from ``src`` to ``dst``."""
        if not (0 <= src < self.num_ranks):
            raise ValueError(f"bad source rank {src}")
        if not (0 <= dst < self.num_ranks):
            raise ValueError(f"bad destination rank {dst}")
        vertices = np.asarray(vertices, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        if vertices.shape != labels.shape:
            raise ValueError("vertices and labels must align")
        if vertices.size == 0:
            return
        if src == dst:
            raise ValueError("local updates must not use the fabric")
        self._outboxes[dst].append((src, vertices, labels))

    def _combine(self, vertices: np.ndarray, labels: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Sender-side min-combiner: one update per vertex, min label,
        sorted by vertex id (the envelope's delta-coded order)."""
        order = np.lexsort((labels, vertices))
        sv, sl = vertices[order], labels[order]
        first = np.empty(sv.size, dtype=bool)
        first[0] = True
        np.not_equal(sv[1:], sv[:-1], out=first[1:])
        return sv[first], sl[first]

    def exchange(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Complete the superstep: deliver everything, return inboxes.

        Returns one ``(vertices, labels)`` pair per rank (concatenated
        over senders in rank order).  Counts the step in ``stats``.
        """
        stats = self.stats
        msgs_by_rank = [0] * self.num_ranks
        bytes_by_rank = [0] * self.num_ranks
        inboxes: list[tuple[np.ndarray, np.ndarray]] = []
        for dst in range(self.num_ranks):
            queue = sorted(self._outboxes[dst], key=lambda t: t[0])
            self._outboxes[dst] = []
            parts_v: list[np.ndarray] = []
            parts_l: list[np.ndarray] = []
            i = 0
            while i < len(queue):
                src = queue[i][0]
                j = i
                while j < len(queue) and queue[j][0] == src:
                    j += 1
                v = np.concatenate([q[1] for q in queue[i:j]])
                lab = np.concatenate([q[2] for q in queue[i:j]])
                i = j
                if self.combining:
                    raw = int(v.size)
                    v, lab = self._combine(v, lab)
                    stats.combined_updates += raw - int(v.size)
                parts_v.append(v)
                parts_l.append(lab)
                stats.updates += int(v.size)
                stats.bytes += int(v.size) * MESSAGE_BYTES
                if self.combining:
                    wire_msgs = 1
                    wire_bytes = (ENVELOPE_HEADER_BYTES
                                  + _envelope_payload_bytes(v, lab))
                else:
                    wire_msgs = int(v.size)
                    wire_bytes = int(v.size) * ENVELOPE_HEADER_BYTES \
                        + varint_bytes(v) + varint_bytes(lab)
                stats.messages += wire_msgs
                stats.header_bytes += wire_msgs * ENVELOPE_HEADER_BYTES
                stats.payload_bytes += (wire_bytes
                                        - wire_msgs * ENVELOPE_HEADER_BYTES)
                msgs_by_rank[src] += wire_msgs
                bytes_by_rank[src] += wire_bytes
            if parts_v:
                inboxes.append((np.concatenate(parts_v),
                                np.concatenate(parts_l)))
            else:
                inboxes.append((np.empty(0, dtype=np.int64),
                                np.empty(0, dtype=np.int64)))
        stats.record_step(msgs_by_rank, bytes_by_rank)
        return inboxes

    def pending_messages(self) -> int:
        """Updates queued but not yet exchanged."""
        return sum(v.size for box in self._outboxes
                   for _, v, _ in box)

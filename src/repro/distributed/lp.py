"""Distributed label-propagation CC over the simulated BSP fabric.

Implements the paper's Section VII direction: LP's SpMV structure maps
directly onto distributed memory, unlike disjoint-set CC [26].  Two
configurations:

* plain distributed LP — every boundary label change is broadcast to
  the neighbouring ranks each superstep (the classic Pregel pattern);
* distributed Thrifty — Zero Planting (global max-degree reduction
  across ranks), Zero Convergence (converged vertices neither compute
  nor communicate), and a send filter that suppresses re-sending a
  label a ghost already holds.

Vertices are block-partitioned across ranks.  Each rank keeps *ghost*
copies of remote neighbours' labels; a superstep is:

1. local compute: pull over owned vertices using owned + ghost labels
   (in place — Unified Labels within the rank);
2. exchange: for each owned vertex whose label changed and that has
   remote neighbours, send (vertex, label) to each rank that needs it;
3. apply: min-merge received labels into the ghost table.

Convergence: a superstep with no label change on any rank and no
in-flight messages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.kernels import pull_block
from ..core.result import CCResult
from ..graph.csr import CSRGraph
from ..instrument.counters import OpCounters
from ..instrument.trace import Direction, IterationRecord, RunTrace
from .comm import CommStats, Fabric

__all__ = ["DistributedLPOptions", "DistributedResult", "distributed_cc"]


@dataclass(frozen=True)
class DistributedLPOptions:
    """Configuration for a distributed CC run."""

    num_ranks: int = 8
    zero_planting: bool = True
    zero_convergence: bool = True
    # True: send a mirror's label only when it changed since the last
    # send (change-tracking, what Thrifty-style distributed LP does).
    # False: the naive SpMV/allgather pattern — every superstep, every
    # boundary vertex broadcasts its label to each neighbouring rank.
    dedup_sends: bool = True
    max_supersteps: int = 100_000

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")


@dataclass
class DistributedResult:
    """Labels plus trace plus communication statistics."""

    result: CCResult
    comm: CommStats

    @property
    def labels(self) -> np.ndarray:
        return self.result.labels

    @property
    def supersteps(self) -> int:
        return self.comm.supersteps


class _Rank:
    """One rank's owned range, ghosts, and remote-edge metadata."""

    def __init__(self, rank: int, graph: CSRGraph, lo: int, hi: int,
                 rank_of: np.ndarray) -> None:
        self.rank = rank
        self.lo = lo
        self.hi = hi
        # Owned slice of the CSR.
        self.num_owned = hi - lo
        # For each owned vertex: which remote ranks need its label
        # (i.e. own one of its neighbours).  Precomputed as a CSR-like
        # (vertex -> ranks) structure.
        src = np.repeat(np.arange(lo, hi, dtype=np.int64),
                        np.diff(graph.indptr[lo:hi + 1]))
        dst = graph.indices[graph.indptr[lo]:graph.indptr[hi]]
        remote = rank_of[dst] != rank
        pairs = np.unique(np.stack(
            [src[remote], rank_of[dst[remote]]], axis=1), axis=0) \
            if remote.any() else np.empty((0, 2), dtype=np.int64)
        self.mirror_vertices = pairs[:, 0]
        self.mirror_ranks = pairs[:, 1]
        # Ghost vertices this rank reads (remote neighbours).
        self.ghosts = np.unique(dst[remote]) if remote.any() \
            else np.empty(0, dtype=np.int64)
        # Last label value sent per (vertex, rank) pair, for dedup.
        self.last_sent = np.full(pairs.shape[0], np.iinfo(np.int64).max,
                                 dtype=np.int64)


def _block_ranges(n: int, num_ranks: int) -> np.ndarray:
    """Rank boundary array of length num_ranks+1 (balanced blocks)."""
    return np.linspace(0, n, num_ranks + 1).astype(np.int64)


def distributed_cc(graph: CSRGraph,
                   opts: DistributedLPOptions | None = None,
                   *, dataset: str = "") -> DistributedResult:
    """Run distributed LP CC; returns labels + communication stats.

    The *global* label array in this simulation plays the role of the
    union of every rank's owned labels and ghost tables: rank-local
    reads of remote labels only observe values that were delivered
    through the fabric (enforced by updating ghosts exclusively from
    inbox messages).
    """
    opts = opts or DistributedLPOptions()
    n = graph.num_vertices
    trace = RunTrace(algorithm="distributed-lp", dataset=dataset)
    fabric = Fabric(opts.num_ranks)
    if n == 0:
        return DistributedResult(
            CCResult(labels=np.empty(0, dtype=np.int64), trace=trace),
            fabric.stats)

    bounds = _block_ranges(n, opts.num_ranks)
    rank_of = np.searchsorted(bounds[1:], np.arange(n), side="right")
    ranks = [_Rank(r, graph, int(bounds[r]), int(bounds[r + 1]), rank_of)
             for r in range(opts.num_ranks)]

    # Each rank's view: owned labels are authoritative; ghost labels
    # live in `view` too but only change via messages.
    views = [np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
             for _ in range(opts.num_ranks)]
    if opts.zero_planting:
        # Global max-degree reduction: each rank reports its local
        # hub; the winner becomes the zero vertex (one tiny allreduce,
        # not counted as per-edge communication).
        local_hubs = [int(bounds[r]) + int(np.argmax(
            graph.degrees[bounds[r]:bounds[r + 1]]))
            for r in range(opts.num_ranks)
            if bounds[r + 1] > bounds[r]]
        hub = max(local_hubs, key=lambda v: (graph.degree(v), -v))
        init = np.arange(1, n + 1, dtype=np.int64)
        init[hub] = 0
    else:
        init = np.arange(n, dtype=np.int64)
    for r, view in enumerate(ranks):
        views[r][view.lo:view.hi] = init[view.lo:view.hi]
        if view.ghosts.size:
            views[r][view.ghosts] = init[view.ghosts]

    for step in range(opts.max_supersteps):
        counters = OpCounters()
        total_changed = 0
        for rk in ranks:
            view = views[rk.rank]
            if rk.num_owned == 0:
                continue
            # Pull over all owned vertices (classic BSP LP sweep).
            # Zero Convergence skips converged rows' work in the cost
            # accounting (and they cannot change: 0 is minimal).
            if opts.zero_convergence:
                scan = view[rk.lo:rk.hi] != 0
            else:
                scan = np.ones(rk.num_owned, dtype=bool)
            new, changed = pull_block(graph, view, rk.lo, rk.hi)
            counters.record_pull_scan(
                int(graph.degrees[rk.lo + np.flatnonzero(scan)].sum()),
                int(scan.sum()))
            rows = rk.lo + np.flatnonzero(changed)
            if rows.size:
                view[rows] = new[changed]
                counters.record_label_commits(int(rows.size),
                                              random=False)
            total_changed += int(rows.size)
            # Communication: mirrors whose label changed.
            if rk.mirror_vertices.size:
                mirror_labels = view[rk.mirror_vertices]
                if opts.dedup_sends:
                    send_mask = mirror_labels < rk.last_sent
                else:
                    # Naive pattern: broadcast every boundary label
                    # every superstep.
                    send_mask = np.ones(rk.mirror_vertices.size,
                                        dtype=bool)
                if send_mask.any():
                    for dst in np.unique(rk.mirror_ranks[send_mask]):
                        sel = send_mask & (rk.mirror_ranks == dst)
                        fabric.send(rk.rank, int(dst),
                                    rk.mirror_vertices[sel],
                                    mirror_labels[sel])
                    rk.last_sent[send_mask] = mirror_labels[send_mask]

        inboxes = fabric.exchange()
        for rk in ranks:
            vs, ls = inboxes[rk.rank]
            if vs.size == 0:
                continue
            view = views[rk.rank]
            before = view[vs].copy()
            np.minimum.at(view, vs, ls)
            improved = np.unique(vs[view[vs] < before])
            total_changed += int(improved.size)

        counters.iterations = 1
        trace.add(IterationRecord(
            index=step, direction=Direction.PULL, density=0.0,
            active_vertices=total_changed, active_edges=0,
            changed_vertices=total_changed, converged_fraction=0.0,
            counters=counters))
        if total_changed == 0 and fabric.pending_messages() == 0:
            break
    else:
        raise RuntimeError("distributed LP failed to converge within "
                           f"{opts.max_supersteps} supersteps")

    # Assemble global labels from each rank's owned range.
    labels = np.empty(n, dtype=np.int64)
    for rk in ranks:
        labels[rk.lo:rk.hi] = views[rk.rank][rk.lo:rk.hi]
    return DistributedResult(CCResult(labels=labels, trace=trace),
                             fabric.stats)

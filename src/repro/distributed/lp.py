"""Distributed label-propagation CC over the simulated BSP fabric.

Implements the paper's Section VII direction: LP's SpMV structure maps
directly onto distributed memory, unlike disjoint-set CC [26].  Two
configurations:

* plain distributed LP — every boundary label change is broadcast to
  the neighbouring ranks each superstep (the classic Pregel pattern);
* distributed Thrifty — Zero Planting (global max-degree reduction
  across ranks), Zero Convergence (converged vertices neither compute
  nor communicate), and a send filter that suppresses re-sending a
  label a ghost already holds.

Vertices are partitioned across ranks by contiguous ranges
(``"block"`` or ``"degree_balanced"``; see
:mod:`repro.distributed.partition`).  Each rank keeps *ghost* copies
of remote neighbours' labels; a superstep is:

1. local compute: pull over owned vertices using owned + ghost labels
   (in place — Unified Labels within the rank).  The pull reuses the
   shared-memory engine's partitioned structure: each rank's range is
   cut into edge-balanced blocks, all-zero (converged) blocks are
   skipped without touching their rows, and within a live block the
   Zero-Convergence kernel :func:`repro.core.kernels.pull_block_zero_cut`
   gathers only the prefix of each row up to its first zero ghost —
   converged work is *not executed*, not merely discounted;
2. exchange: for each owned vertex whose label changed and that has
   remote neighbours, send (vertex, label) to each rank that needs it
   (the fabric min-combines and batches when ``combining=True``);
3. apply: min-merge received labels into the ghost table.

Convergence: a superstep with no label change on any rank and no
in-flight messages.

Results are ordinary :class:`~repro.core.result.CCResult` values; the
communication record travels in ``result.extras`` (``"comm"`` — the
fabric's :class:`CommStats` — plus ``"edge_cut"``, ``"num_ranks"``,
``"partition"`` and ``"algorithm"``), the same extras/metrics
convention the serving layer uses, so the result cache keys
distributed runs like any other method.
"""

from __future__ import annotations

import numpy as np

from ..core.backends import get_backend
from ..core.result import CCResult
from ..graph.csr import CSRGraph
from ..instrument.counters import OpCounters
from ..instrument.trace import Direction, IterationRecord, RunTrace
from ..options import DistributedOptions
from .comm import Fabric
from .partition import edge_cut, intra_rank_blocks, rank_bounds, \
    rank_of_vertex

__all__ = ["DistributedOptions", "distributed_cc"]

#: Edge-balanced pull blocks per rank (the rank-local analogue of the
#: engine's partitions-per-thread; converged blocks are skipped whole).
BLOCKS_PER_RANK = 8


class _Rank:
    """One rank's owned range, ghosts, and remote-edge metadata."""

    def __init__(self, rank: int, graph: CSRGraph, lo: int, hi: int,
                 rank_of: np.ndarray) -> None:
        self.rank = rank
        self.lo = lo
        self.hi = hi
        # Owned slice of the CSR.
        self.num_owned = hi - lo
        # For each owned vertex: which remote ranks need its label
        # (i.e. own one of its neighbours).  Precomputed as a CSR-like
        # (vertex -> ranks) structure.
        src = np.repeat(np.arange(lo, hi, dtype=np.int64),
                        np.diff(graph.indptr[lo:hi + 1]))
        dst = graph.indices[graph.indptr[lo]:graph.indptr[hi]]
        remote = rank_of[dst] != rank
        pairs = np.unique(np.stack(
            [src[remote], rank_of[dst[remote]]], axis=1), axis=0) \
            if remote.any() else np.empty((0, 2), dtype=np.int64)
        self.mirror_vertices = pairs[:, 0]
        self.mirror_ranks = pairs[:, 1]
        # Ghost vertices this rank reads (remote neighbours).
        self.ghosts = np.unique(dst[remote]) if remote.any() \
            else np.empty(0, dtype=np.int64)
        # Last label value sent per (vertex, rank) pair, for dedup.
        self.last_sent = np.full(pairs.shape[0], np.iinfo(np.int64).max,
                                 dtype=np.int64)
        # Rank-local pull blocks (edge-balanced within the range).
        self.block_bounds = intra_rank_blocks(graph, lo, hi,
                                              BLOCKS_PER_RANK)


def _build_ranks(graph: CSRGraph, opts: DistributedOptions
                 ) -> tuple[list[_Rank], np.ndarray, np.ndarray]:
    bounds = rank_bounds(graph, opts.num_ranks, opts.partition)
    rank_of = rank_of_vertex(bounds, graph.num_vertices)
    ranks = [_Rank(r, graph, int(bounds[r]), int(bounds[r + 1]), rank_of)
             for r in range(opts.num_ranks)]
    return ranks, bounds, rank_of


def _initial_labels(graph: CSRGraph, bounds: np.ndarray,
                    zero_planting: bool) -> np.ndarray:
    if not zero_planting:
        return np.arange(graph.num_vertices, dtype=np.int64)
    # Global max-degree reduction: each rank reports its local hub;
    # the winner becomes the zero vertex (one tiny allreduce, not
    # counted as per-edge communication).
    local_hubs = [int(bounds[r]) + int(np.argmax(
        graph.degrees[bounds[r]:bounds[r + 1]]))
        for r in range(bounds.size - 1)
        if bounds[r + 1] > bounds[r]]
    hub = max(local_hubs, key=lambda v: (graph.degree(v), -v))
    init = np.arange(1, graph.num_vertices + 1, dtype=np.int64)
    init[hub] = 0
    return init


def _rank_pull(graph: CSRGraph, rk: _Rank, view: np.ndarray,
               counters: OpCounters, zero_convergence: bool,
               kb=None) -> int:
    """One rank's local compute: partitioned, convergence-skipping pull.

    Returns the number of owned labels that changed.  Mirrors the
    engine's converged-block-aware strategy at rank scope: all-zero
    blocks are skipped in O(1), live blocks run the zero-cut kernel —
    dispatched through ``kb``, the run's kernel backend.
    """
    kb = kb or get_backend()
    bb = rk.block_bounds
    changed_total = 0
    for b in range(bb.size - 1):
        lo, hi = int(bb[b]), int(bb[b + 1])
        nv = hi - lo
        if nv == 0:
            continue
        if zero_convergence:
            own = view[lo:hi]
            skip = own == 0
            n_skip = int(np.count_nonzero(skip))
            if n_skip == nv:
                # Converged block: per-vertex own-label checks only,
                # no kernel call, no edges touched.
                counters.record_pull_skip(nv)
                continue
            new, changed, scanned = kb.pull_block_zero_cut(
                graph, view, lo, hi, skip)
            counters.record_pull_scan(scanned, nv - n_skip)
            if n_skip:
                counters.record_pull_skip(n_skip)
        else:
            new, changed = kb.pull_block(graph, view, lo, hi)
            counters.record_pull_scan(
                int(graph.indptr[hi] - graph.indptr[lo]), nv)
        rows = lo + np.flatnonzero(changed)
        if rows.size:
            view[rows] = new[changed]
            counters.record_label_commits(int(rows.size), random=False)
            changed_total += int(rows.size)
    return changed_total


def _distributed_lp(graph: CSRGraph, opts: DistributedOptions,
                    trace: RunTrace, fabric: Fabric,
                    ranks: list[_Rank], bounds: np.ndarray) -> np.ndarray:
    """Run the LP supersteps; returns the assembled global labels."""
    n = graph.num_vertices
    # Each rank's view: owned labels are authoritative; ghost labels
    # live in `view` too but only change via messages.
    views = [np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
             for _ in range(opts.num_ranks)]
    init = _initial_labels(graph, bounds, opts.zero_planting)
    for r, rk in enumerate(ranks):
        views[r][rk.lo:rk.hi] = init[rk.lo:rk.hi]
        if rk.ghosts.size:
            views[r][rk.ghosts] = init[rk.ghosts]

    kb = get_backend(opts.backend)
    for step in range(opts.max_supersteps):
        counters = OpCounters()
        total_changed = 0
        for rk in ranks:
            view = views[rk.rank]
            if rk.num_owned == 0:
                continue
            total_changed += _rank_pull(graph, rk, view, counters,
                                        opts.zero_convergence, kb)
            # Communication: mirrors whose label changed.
            if rk.mirror_vertices.size:
                mirror_labels = view[rk.mirror_vertices]
                if opts.dedup_sends:
                    send_mask = mirror_labels < rk.last_sent
                else:
                    # Naive pattern: broadcast every boundary label
                    # every superstep.
                    send_mask = np.ones(rk.mirror_vertices.size,
                                        dtype=bool)
                if send_mask.any():
                    for dst in np.unique(rk.mirror_ranks[send_mask]):
                        sel = send_mask & (rk.mirror_ranks == dst)
                        fabric.send(rk.rank, int(dst),
                                    rk.mirror_vertices[sel],
                                    mirror_labels[sel])
                    rk.last_sent[send_mask] = mirror_labels[send_mask]

        inboxes = fabric.exchange()
        for rk in ranks:
            vs, ls = inboxes[rk.rank]
            if vs.size == 0:
                continue
            view = views[rk.rank]
            before = view[vs].copy()
            np.minimum.at(view, vs, ls)
            improved = np.unique(vs[view[vs] < before])
            total_changed += int(improved.size)

        counters.iterations = 1
        trace.add(IterationRecord(
            index=step, direction=Direction.PULL, density=0.0,
            active_vertices=total_changed, active_edges=0,
            changed_vertices=total_changed, converged_fraction=0.0,
            counters=counters))
        if total_changed == 0 and fabric.pending_messages() == 0:
            break
    else:
        raise RuntimeError("distributed LP failed to converge within "
                           f"{opts.max_supersteps} supersteps")

    labels = np.empty(n, dtype=np.int64)
    for rk in ranks:
        labels[rk.lo:rk.hi] = views[rk.rank][rk.lo:rk.hi]
    return labels


def distributed_cc(graph: CSRGraph,
                   opts: DistributedOptions | None = None,
                   *, dataset: str = "") -> CCResult:
    """Run sharded CC (LP or FastSV) on the simulated fabric.

    The *global* label array in this simulation plays the role of the
    union of every rank's owned labels and ghost tables: rank-local
    reads of remote labels only observe values that were delivered
    through the fabric (enforced by updating ghosts exclusively from
    inbox messages).

    Returns a plain :class:`CCResult`; communication statistics ride
    in ``result.extras`` (see module docstring).
    """
    opts = opts or DistributedOptions()
    algorithm_name = ("distributed-lp" if opts.algorithm == "lp"
                      else "distributed-fastsv")
    trace = RunTrace(algorithm=algorithm_name, dataset=dataset)
    fabric = Fabric(opts.num_ranks, combining=opts.combining)
    n = graph.num_vertices
    if n == 0:
        return CCResult(
            labels=np.empty(0, dtype=np.int64), trace=trace,
            extras={"comm": fabric.stats, "edge_cut": 0,
                    "num_ranks": opts.num_ranks,
                    "partition": opts.partition,
                    "algorithm": opts.algorithm})

    ranks, bounds, rank_of = _build_ranks(graph, opts)
    if opts.algorithm == "lp":
        labels = _distributed_lp(graph, opts, trace, fabric, ranks,
                                 bounds)
    else:
        from .fastsv import distributed_fastsv_labels
        labels = distributed_fastsv_labels(graph, opts, trace, fabric,
                                           ranks, rank_of)
    return CCResult(
        labels=labels, trace=trace,
        extras={"comm": fabric.stats,
                "edge_cut": edge_cut(graph, rank_of),
                "num_ranks": opts.num_ranks,
                "partition": opts.partition,
                "algorithm": opts.algorithm})

"""Distributed FastSV — the union-find competitor on the same fabric.

FastSV (Zhang, Azad & Hu, arXiv:1910.05971) is the standard
distributed-memory min-label union-find variant; racing it against
distributed Thrifty on the *same* simulated fabric makes the paper's
Section VII communication claim directly measurable: both report
through one :class:`~repro.distributed.comm.CommStats`, so messages
and modeled bytes are comparable number-for-number.

Parents are partitioned across ranks by the same contiguous rank
bounds as LP.  Each rank keeps a full-size *view* of the parent
vector: owned entries are authoritative, every other entry is a stale
mirror that only improves when the owner's updates arrive through the
fabric (initial values are the globally-known identity, so no
bootstrap exchange is needed).  One superstep, per rank, over its
owned CSR rows (edges ``(u, v)`` with ``u`` owned):

1. grandparents: ``gu = view[view[u]]`` — one local read, one
   possibly-stale mirror read;
2. stochastic hooking: propose ``f[view[v]] <- min(.., gu)``;
3. aggressive hooking: propose ``f[v] <- min(.., gu)``;
4. shortcutting: ``f[w] <- min(f[w], view[view[w]])`` for owned ``w``.

Proposals targeting owned entries apply locally (min-merge);
proposals targeting remote entries become fabric messages to the
owner, filtered by a per-rank ``sent`` watermark (never re-send a
value >= the best already sent for that entry — the union-find
analogue of LP's change-tracked sends).  Receivers min-merge their
inboxes into owned entries.

Parent entries only decrease and every proposed value is a vertex id
from the same component, so the assembled global parent vector is an
acyclic forest; at quiescence (no local change, no in-flight message)
every component's entries have collapsed to its minimum vertex id —
the same labels sequential FastSV converges to.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..instrument.counters import OpCounters
from ..instrument.trace import Direction, IterationRecord, RunTrace
from ..options import DistributedOptions
from .comm import Fabric

__all__ = ["distributed_fastsv_labels"]


class _RankEdges:
    """One rank's owned edge slice, precomputed once."""

    def __init__(self, graph: CSRGraph, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi
        self.num_owned = hi - lo
        self.src = np.repeat(np.arange(lo, hi, dtype=np.int64),
                             np.diff(graph.indptr[lo:hi + 1]))
        self.dst = graph.indices[
            graph.indptr[lo]:graph.indptr[hi]].astype(np.int64)


def distributed_fastsv_labels(graph: CSRGraph, opts: DistributedOptions,
                              trace: RunTrace, fabric: Fabric,
                              ranks: list, rank_of: np.ndarray
                              ) -> np.ndarray:
    """Run distributed FastSV supersteps; returns global labels.

    ``ranks`` supplies each rank's ``(lo, hi)`` range (the LP tier's
    ``_Rank`` objects — only the bounds are used here).
    """
    n = graph.num_vertices
    num_ranks = opts.num_ranks
    intmax = np.iinfo(np.int64).max
    edges = [_RankEdges(graph, rk.lo, rk.hi) for rk in ranks]
    views = [np.arange(n, dtype=np.int64) for _ in range(num_ranks)]
    # Best value ever sent to each entry's owner, per sending rank:
    # proposals >= the watermark cannot improve the owner's entry
    # (entries are min-merged and monotone), so they are suppressed.
    sent = [np.full(n, intmax, dtype=np.int64) for _ in range(num_ranks)]
    for view in views:
        trace.setup_counters.sequential_accesses += n
        trace.setup_counters.label_writes += n

    for step in range(opts.max_supersteps):
        counters = OpCounters()
        total_changed = 0
        active_edges = 0
        for r in range(num_ranks):
            er = edges[r]
            if er.num_owned == 0:
                continue
            view = views[r]
            m_r = er.src.size
            n_r = er.num_owned
            active_edges += m_r
            before = view[er.lo:er.hi].copy()
            # Grandparents of owned sources: view[u] is authoritative,
            # view[view[u]] may be a stale mirror (monotone-safe).
            gu = view[view[er.src]]
            counters.edges_processed += m_r
            counters.random_accesses += 2 * m_r
            counters.label_reads += 2 * m_r
            counters.branches += 2 * m_r
            counters.unpredictable_branches += m_r
            # Hooking proposals: stochastic targets f[v], aggressive
            # targets v itself; both carry gu.
            targets = np.concatenate([view[er.dst], er.dst])
            values = np.concatenate([gu, gu])
            counters.random_accesses += m_r      # view[dst] gather
            counters.label_reads += m_r
            counters.cas_attempts += 2 * m_r
            local = rank_of[targets] == r
            lt, lv = targets[local], values[local]
            if lt.size:
                np.minimum.at(view, lt, lv)
            # Shortcutting over the owned range (after local hooks).
            own = view[er.lo:er.hi]
            np.minimum(own, view[own], out=own)
            counters.random_accesses += n_r
            counters.label_reads += n_r
            counters.sequential_accesses += n_r
            changed = int(np.count_nonzero(view[er.lo:er.hi] != before))
            counters.record_cas_successes(changed)
            total_changed += changed
            # Remote proposals through the fabric, watermark-filtered.
            remote_t, remote_v = targets[~local], values[~local]
            if remote_t.size:
                w = sent[r]
                passing = remote_v < w[remote_t]
                remote_t, remote_v = remote_t[passing], remote_v[passing]
                if remote_t.size:
                    np.minimum.at(w, remote_t, remote_v)
                    dst_ranks = rank_of[remote_t]
                    for dst in np.unique(dst_ranks):
                        sel = dst_ranks == dst
                        fabric.send(r, int(dst), remote_t[sel],
                                    remote_v[sel])

        inboxes = fabric.exchange()
        for r in range(num_ranks):
            vs, ls = inboxes[r]
            if vs.size == 0:
                continue
            view = views[r]
            before = view[vs].copy()
            np.minimum.at(view, vs, ls)
            improved = np.unique(vs[view[vs] < before])
            total_changed += int(improved.size)

        counters.iterations = 1
        trace.add(IterationRecord(
            index=step, direction=Direction.PUSH, density=1.0,
            active_vertices=n, active_edges=active_edges,
            changed_vertices=total_changed, converged_fraction=0.0,
            counters=counters))
        if total_changed == 0 and fabric.pending_messages() == 0:
            break
    else:
        raise RuntimeError("distributed FastSV failed to converge "
                           f"within {opts.max_supersteps} supersteps")

    trace.iterations[-1].converged_fraction = 1.0
    labels = np.empty(n, dtype=np.int64)
    for rk in ranks:
        labels[rk.lo:rk.hi] = views[rk.rank][rk.lo:rk.hi]
    return labels

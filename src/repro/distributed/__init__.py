"""Distributed LP simulation (paper Section VII future work)."""

from .comm import CommStats, Fabric
from .costmodel import (
    ETHERNET_25G,
    HDR_INFINIBAND,
    NetworkSpec,
    simulate_distributed_time,
)
from .lp import DistributedLPOptions, DistributedResult, distributed_cc

__all__ = [
    "Fabric",
    "CommStats",
    "DistributedLPOptions",
    "DistributedResult",
    "distributed_cc",
    "NetworkSpec",
    "ETHERNET_25G",
    "HDR_INFINIBAND",
    "simulate_distributed_time",
]

"""Sharded CC tier on a simulated BSP fabric (paper Section VII).

Distributed Thrifty-style LP and distributed FastSV run over the same
bandwidth-accounted message fabric; runs are reachable through the
typed front door (``connected_components(graph, "distributed",
options=DistributedOptions(...))``), the service planner and the CLI.

The legacy ``DistributedLPOptions`` name is a deprecated alias of
:class:`repro.options.DistributedOptions` (import-time
``DeprecationWarning``, promoted to an error under pytest).
"""

import warnings

from ..options import DistributedOptions
from .comm import CommStats, Fabric
from .costmodel import (
    ETHERNET_25G,
    HDR_INFINIBAND,
    NetworkSpec,
    simulate_distributed_time,
)
from .lp import distributed_cc
from .partition import PARTITION_STRATEGIES, edge_cut, rank_bounds

__all__ = [
    "Fabric",
    "CommStats",
    "DistributedOptions",
    "distributed_cc",
    "NetworkSpec",
    "ETHERNET_25G",
    "HDR_INFINIBAND",
    "simulate_distributed_time",
    "PARTITION_STRATEGIES",
    "rank_bounds",
    "edge_cut",
]


def __getattr__(name: str):
    if name == "DistributedLPOptions":
        warnings.warn(
            "DistributedLPOptions is deprecated; use "
            "repro.options.DistributedOptions (same fields, plus the "
            "sharded-tier ones: algorithm, partition, combining)",
            DeprecationWarning, stacklevel=2)
        return DistributedOptions
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")

"""Simulated time for distributed runs: compute + alpha-beta network.

The shared-memory cost model prices one machine; a distributed
superstep additionally pays communication.  The classic alpha-beta
(LogP-ish) model:

    t_step = t_compute(max loaded rank)
           + alpha                      (per-superstep latency)
           + max_rank_bytes / beta      (bottleneck-rank bandwidth)

Compute per rank approximates the balanced share of the superstep's
counted work priced by the node's cost model; the communication term
uses the fabric's exact per-rank message maxima.  As with the
shared-memory model, only relative shapes are claimed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..instrument.costmodel import CostModel
from ..parallel.machine import SKYLAKEX, MachineSpec
from .comm import MESSAGE_BYTES
from .lp import DistributedResult

__all__ = ["NetworkSpec", "ETHERNET_25G", "HDR_INFINIBAND",
           "simulate_distributed_time"]


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect parameters for the alpha-beta model."""

    name: str
    latency_us: float          # alpha: per-superstep round latency
    bandwidth_gbps: float      # beta: per-node bandwidth

    def __post_init__(self) -> None:
        if self.latency_us <= 0 or self.bandwidth_gbps <= 0:
            raise ValueError("latency and bandwidth must be positive")

    def transfer_ms(self, num_bytes: int) -> float:
        return (self.latency_us / 1e3
                + num_bytes * 8 / (self.bandwidth_gbps * 1e9) * 1e3)


ETHERNET_25G = NetworkSpec("25GbE", latency_us=30.0, bandwidth_gbps=25.0)
HDR_INFINIBAND = NetworkSpec("HDR-IB", latency_us=2.0,
                             bandwidth_gbps=200.0)


def simulate_distributed_time(result: DistributedResult,
                              num_vertices: int,
                              num_ranks: int,
                              *,
                              node: MachineSpec = SKYLAKEX,
                              network: NetworkSpec = ETHERNET_25G
                              ) -> float:
    """Simulated wall-clock (ms) of a distributed run.

    Compute: each superstep's counters are divided evenly across
    ranks (block partitions are near-balanced by construction) and
    priced with the node's cost model; every rank is a full ``node``.
    Communication: one alpha per superstep plus the bottleneck rank's
    bytes (``max_rank_messages_per_step`` is tracked exactly; the
    per-step maximum is approximated by the run-level maximum).
    """
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    cm = CostModel(node, max(num_vertices // num_ranks, 1))
    total_ms = 0.0
    trace = result.result.trace
    for rec in trace.iterations:
        share = rec.counters.copy()
        for field_name, value in share.as_dict().items():
            setattr(share, field_name, value // num_ranks)
        share.iterations = 1
        total_ms += cm.iteration_ms(share)
    if num_ranks > 1 and trace.num_iterations:
        per_step_bytes = (result.comm.max_rank_messages_per_step
                          * MESSAGE_BYTES)
        total_ms += trace.num_iterations * network.transfer_ms(
            per_step_bytes)
    return total_ms

"""Simulated time for distributed runs: compute + alpha-beta network.

The shared-memory cost model prices one machine; a distributed
superstep additionally pays communication.  The classic alpha-beta
(LogP-ish) model:

    t_step = t_compute(max loaded rank)
           + alpha                      (per-superstep latency)
           + max_rank_bytes / beta      (bottleneck-rank bandwidth)

Compute per rank approximates the balanced share of the superstep's
counted work priced by the node's cost model; the communication term
uses the fabric's exact per-rank *modeled* byte maxima (envelope
headers + delta/varint payloads — see :mod:`repro.distributed.comm`),
so sender-side combining and batching show up directly as saved wire
time.  As with the shared-memory model, only relative shapes are
claimed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.result import CCResult
from ..instrument.costmodel import CostModel
from ..parallel.machine import SKYLAKEX, MachineSpec
from .comm import CommStats

__all__ = ["NetworkSpec", "ETHERNET_25G", "HDR_INFINIBAND",
           "simulate_distributed_time"]


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect parameters for the alpha-beta model."""

    name: str
    latency_us: float          # alpha: per-superstep round latency
    bandwidth_gbps: float      # beta: per-node bandwidth

    def __post_init__(self) -> None:
        if self.latency_us <= 0 or self.bandwidth_gbps <= 0:
            raise ValueError("latency and bandwidth must be positive")

    def transfer_ms(self, num_bytes: int) -> float:
        return (self.latency_us / 1e3
                + num_bytes * 8 / (self.bandwidth_gbps * 1e9) * 1e3)


ETHERNET_25G = NetworkSpec("25GbE", latency_us=30.0, bandwidth_gbps=25.0)
HDR_INFINIBAND = NetworkSpec("HDR-IB", latency_us=2.0,
                             bandwidth_gbps=200.0)


def simulate_distributed_time(result: CCResult,
                              num_vertices: int,
                              num_ranks: int | None = None,
                              *,
                              node: MachineSpec = SKYLAKEX,
                              network: NetworkSpec = ETHERNET_25G
                              ) -> float:
    """Simulated wall-clock (ms) of a distributed run.

    ``result`` is the :class:`CCResult` a distributed run returns —
    its ``extras["comm"]`` :class:`CommStats` drives the network term;
    ``num_ranks`` defaults to ``extras["num_ranks"]``.

    Compute: each superstep's counters are divided evenly across
    ranks (rank partitions are near-balanced by construction) and
    priced with the node's cost model; every rank is a full ``node``.
    Communication: one alpha per superstep plus the bottleneck rank's
    modeled bytes (``max_rank_bytes_per_step`` is tracked exactly; the
    per-step maximum is approximated by the run-level maximum).
    """
    comm: CommStats | None = result.extras.get("comm")
    if comm is None:
        raise ValueError("result has no extras['comm'] record; "
                         "was it produced by distributed_cc?")
    if num_ranks is None:
        num_ranks = int(result.extras.get("num_ranks", 1))
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    cm = CostModel(node, max(num_vertices // num_ranks, 1))
    total_ms = 0.0
    trace = result.trace
    for rec in trace.iterations:
        share = rec.counters.copy()
        for field_name, value in share.as_dict().items():
            setattr(share, field_name, value // num_ranks)
        share.iterations = 1
        total_ms += cm.iteration_ms(share)
    if num_ranks > 1 and trace.num_iterations:
        total_ms += trace.num_iterations * network.transfer_ms(
            comm.max_rank_bytes_per_step)
    return total_ms

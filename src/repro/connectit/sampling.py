"""ConnectIt sampling strategies (Dhulipala et al., VLDB 2021).

The paper's Related Work discusses ConnectIt — a framework combining
*sampling* strategies (cheaply union a subgraph so most of the giant
component is already merged) with *finish* strategies (complete the
remaining work, usually skipping the sampled giant component).  The
authors could not evaluate ConnectIt because its repository did not
compile; this subpackage implements the framework's design space so
the comparison the paper wanted can be run.

All strategies operate on a union-find parent array and return an
OpCounters-style record of the work they performed, charged through
the shared :func:`repro.baselines.disjoint_set.charge_union` recipe
(one accounting convention across every union call site in the repo):

* ``kout`` — union every vertex with its first k neighbours
  (Afforest's "neighbour rounds" is exactly k-out with k=2);
* ``bfs`` — run a BFS from the max-degree vertex for a bounded number
  of rounds, unioning tree edges (captures the hub's neighbourhood);
* ``ldd`` — low-diameter decomposition: multi-source BFS from random
  seeds growing disjoint clusters, unioning intra-cluster tree edges;
* ``none`` — no sampling (pure finish baseline).

Every strategy takes ``local`` (default True): worklist-local root
resolution inside ``union_edge_batch``; ``local=False`` is the
all-vertex reference with identical links and labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.disjoint_set import charge_union, union_edge_batch
from ..graph.csr import CSRGraph
from ..instrument.counters import OpCounters

__all__ = ["SampleOutcome", "SAMPLING_STRATEGIES",
           "sample_kout", "sample_bfs", "sample_ldd", "sample_none"]


@dataclass
class SampleOutcome:
    """Result of a sampling phase."""

    counters: OpCounters
    edges_sampled: int

    @staticmethod
    def empty() -> "SampleOutcome":
        return SampleOutcome(OpCounters(), 0)


def sample_kout(graph: CSRGraph, parent: np.ndarray,
                *, k: int = 2, seed: int = 0,
                local: bool = True) -> SampleOutcome:
    """Union each vertex with its first ``k`` neighbours."""
    counters = OpCounters()
    total = 0
    degrees = graph.degrees
    for r in range(k):
        has = np.flatnonzero(degrees > r)
        if has.size == 0:
            break
        nbr = graph.indices[graph.indptr[has] + r].astype(np.int64)
        links, hops = union_edge_batch(parent, has, nbr, local=local)
        charge_union(counters, int(has.size), links, hops)
        total += int(has.size)
    return SampleOutcome(counters, total)


def sample_bfs(graph: CSRGraph, parent: np.ndarray,
               *, rounds: int = 3, seed: int = 0,
               local: bool = True) -> SampleOutcome:
    """BFS from the hub for ``rounds`` levels, unioning tree edges."""
    counters = OpCounters()
    n = graph.num_vertices
    if n == 0:
        return SampleOutcome.empty()
    hub = graph.max_degree_vertex()
    seen = np.zeros(n, dtype=bool)
    seen[hub] = True
    frontier = np.array([hub], dtype=np.int64)
    total = 0
    for _ in range(rounds):
        if frontier.size == 0:
            break
        counts = graph.degrees[frontier]
        src = np.repeat(frontier, counts)
        offsets = graph.indptr[frontier]
        total_edges = int(counts.sum())
        if total_edges == 0:
            break
        pos = np.concatenate([
            np.arange(o, o + c) for o, c in zip(offsets, counts)]) \
            if frontier.size < 10_000 else None
        if pos is None:   # pragma: no cover - large-frontier fallback
            from ..core.kernels import concat_adjacency
            dst, counts = concat_adjacency(graph, frontier)
            src = np.repeat(frontier, counts)
        else:
            dst = graph.indices[pos].astype(np.int64)
        links, hops = union_edge_batch(parent, src, dst, local=local)
        charge_union(counters, int(dst.size), links, hops)
        total += int(dst.size)
        fresh = np.unique(dst[~seen[dst]])
        seen[fresh] = True
        frontier = fresh.astype(np.int64)
    return SampleOutcome(counters, total)


def sample_ldd(graph: CSRGraph, parent: np.ndarray,
               *, num_seeds: int | None = None, rounds: int = 4,
               seed: int = 0, local: bool = True) -> SampleOutcome:
    """Low-diameter decomposition sampling.

    Grows disjoint BFS clusters from random seeds for ``rounds``
    levels; edges claimed by a cluster are unioned.  Vertices are
    owned by whichever cluster reaches them first (ties: lower seed
    index), mirroring the shifted-start LDD construction.
    """
    counters = OpCounters()
    n = graph.num_vertices
    if n == 0:
        return SampleOutcome.empty()
    rng = np.random.default_rng(seed)
    k = num_seeds if num_seeds is not None else max(1, n // 16)
    seeds = rng.choice(n, size=min(k, n), replace=False)
    owner = np.full(n, -1, dtype=np.int64)
    owner[seeds] = seeds
    # Tie-break rank: the position of each seed in the draw order, so
    # simultaneous claims resolve toward the lower seed index.
    seed_rank = np.full(n, n, dtype=np.int64)
    seed_rank[seeds] = np.arange(seeds.size)
    frontier = np.unique(seeds).astype(np.int64)
    total = 0
    for _ in range(rounds):
        if frontier.size == 0:
            break
        from ..core.kernels import concat_adjacency
        dst, counts = concat_adjacency(graph, frontier)
        src = np.repeat(frontier, counts)
        if dst.size == 0:
            break
        dst = dst.astype(np.int64)
        # Claim unowned targets; among same-round claims to one target
        # the cluster with the lowest seed index wins.
        unowned = owner[dst] < 0
        claim_src = src[unowned]
        claim_dst = dst[unowned]
        if claim_dst.size:
            rank = seed_rank[owner[claim_src]]
            order = np.lexsort((rank, claim_dst))
            cd = claim_dst[order]
            cs = claim_src[order]
            first = np.ones(cd.size, dtype=bool)
            first[1:] = cd[1:] != cd[:-1]
            winners_dst = cd[first]
            winners_src = cs[first]
            owner[winners_dst] = owner[winners_src]
            links, hops = union_edge_batch(parent, winners_src,
                                           winners_dst, local=local)
            charge_union(counters, int(dst.size), links, hops)
            total += int(dst.size)
            frontier = winners_dst
        else:
            counters.edges_processed += int(dst.size)
            counters.random_accesses += int(dst.size)
            total += int(dst.size)
            break
    return SampleOutcome(counters, total)


def sample_none(graph: CSRGraph, parent: np.ndarray,
                *, seed: int = 0, local: bool = True) -> SampleOutcome:
    """No sampling: the finish phase does all the work."""
    return SampleOutcome.empty()


SAMPLING_STRATEGIES = {
    "kout": sample_kout,
    "bfs": sample_bfs,
    "ldd": sample_ldd,
    "none": sample_none,
}

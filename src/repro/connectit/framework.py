"""The ConnectIt sampling x finish framework front door.

``connectit_cc(graph, sampling="kout", finish="skip-giant")`` runs one
point in the design space and returns a normal :class:`CCResult` whose
trace has one record per phase, so the experiment harness and cost
model treat it exactly like any other algorithm.
"""

from __future__ import annotations

import numpy as np

from ..core.result import CCResult
from ..graph.csr import CSRGraph
from ..instrument.trace import Direction, IterationRecord, RunTrace
from ..parallel.machine import SKYLAKEX, MachineSpec
from .finish import FINISH_STRATEGIES
from .sampling import SAMPLING_STRATEGIES

__all__ = ["connectit_cc", "connectit_design_space"]


def connectit_cc(graph: CSRGraph,
                 *,
                 sampling: str = "kout",
                 finish: str = "skip-giant",
                 seed: int = 0,
                 machine: MachineSpec = SKYLAKEX,
                 dataset: str = "",
                 local: bool = True,
                 **strategy_kwargs) -> CCResult:
    """Run one (sampling, finish) combination.

    ``strategy_kwargs`` go to the sampling strategy (e.g. ``k=3`` for
    k-out, ``rounds=2`` for BFS/LDD sampling).  ``local`` selects
    worklist-local union-find root resolution in both phases (the
    default); ``local=False`` runs the all-vertex reference, with
    identical labels and link counts.  ``machine`` is accepted for
    front-door uniformity; execution is machine-independent (the cost
    model applies it at timing).
    """
    del machine
    try:
        sample_fn = SAMPLING_STRATEGIES[sampling]
    except KeyError:
        raise ValueError(f"unknown sampling {sampling!r}; "
                         f"known: {sorted(SAMPLING_STRATEGIES)}") from None
    try:
        finish_fn = FINISH_STRATEGIES[finish]
    except KeyError:
        raise ValueError(f"unknown finish {finish!r}; "
                         f"known: {sorted(FINISH_STRATEGIES)}") from None

    n = graph.num_vertices
    trace = RunTrace(algorithm=f"connectit[{sampling}+{finish}]",
                     dataset=dataset)
    parent = np.arange(n, dtype=np.int64)
    trace.setup_counters.sequential_accesses += n
    trace.setup_counters.label_writes += n
    if n == 0:
        return CCResult(labels=parent, trace=trace)

    sampled = sample_fn(graph, parent, seed=seed, local=local,
                        **strategy_kwargs)
    sampled.counters.iterations = 1
    trace.add(IterationRecord(
        index=0, direction=Direction.PUSH, density=1.0,
        active_vertices=n, active_edges=sampled.edges_sampled,
        changed_vertices=n, converged_fraction=0.0,
        counters=sampled.counters))

    outcome = finish_fn(graph, parent, seed=seed, local=local)
    outcome.counters.iterations = 1
    trace.add(IterationRecord(
        index=1, direction=Direction.PUSH, density=0.0,
        active_vertices=n, active_edges=outcome.edges_processed,
        changed_vertices=n, converged_fraction=1.0,
        counters=outcome.counters))
    return CCResult(labels=outcome.labels, trace=trace)


def connectit_design_space() -> list[tuple[str, str]]:
    """All (sampling, finish) combinations the framework supports."""
    return [(s, f) for s in SAMPLING_STRATEGIES
            for f in FINISH_STRATEGIES]

"""ConnectIt finish strategies.

After sampling merged most of the giant component, a finish strategy
completes the components:

* ``skip-giant`` — identify the most frequent sampled component and
  union only the edges of vertices outside it (Afforest's phase 3;
  ConnectIt's most effective finish on skewed graphs);
* ``all-edges`` — union every remaining edge (the safe baseline);
* ``thrifty-pull`` — run Thrifty-style zero-convergent label
  propagation seeded from the sampled components: the sampled roots
  are flattened into labels, the largest component's label is mapped
  to zero, and the LP engine finishes propagation.  This is the
  hybrid the paper's framing invites (sampling + LP finish).

Union work is charged through the shared
:func:`repro.baselines.disjoint_set.charge_union` recipe and sampled
finds through :func:`charge_finds` — the same convention as every
other union call site, so counter streams stay comparable across the
design space.  ``local`` (default True) selects worklist-local root
resolution; ``local=False`` is the all-vertex reference with
identical links and labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.disjoint_set import (
    charge_finds,
    charge_union,
    flatten_parents,
    pointer_jump_roots,
    resolve_roots_local,
    union_edge_batch,
)
from ..graph.csr import CSRGraph
from ..instrument.counters import OpCounters

__all__ = ["FinishOutcome", "FINISH_STRATEGIES",
           "finish_skip_giant", "finish_all_edges", "finish_thrifty_pull"]


@dataclass
class FinishOutcome:
    """Result of a finish phase: final labels plus its work record."""

    labels: np.ndarray
    counters: OpCounters
    edges_processed: int


def _sampled_giant(parent: np.ndarray, sample_size: int, seed: int,
                   local: bool) -> tuple[np.ndarray, int, int]:
    """(all roots, most frequent sampled root, sampled-find hops).

    The hops are the modelled find cost of exactly the sampled
    vertices (worklist-local resolution); the all-vertex reference
    keeps the historical flat two-hops-per-sample charge.  The full
    roots view is a simulation device for the membership tests below
    and is not charged (the real algorithm folds that find into each
    vertex's finish-phase visit).
    """
    n = parent.size
    rng = np.random.default_rng(seed)
    sample = rng.integers(0, n, size=min(sample_size, n))
    if local:
        sample_roots, hops = resolve_roots_local(parent, sample)
    else:
        all_roots, _ = pointer_jump_roots(parent)
        sample_roots = all_roots[sample]
        hops = 2 * int(sample.size)
    giant = int(np.bincount(sample_roots).argmax())
    roots, _ = pointer_jump_roots(parent)
    return roots, giant, hops


def finish_skip_giant(graph: CSRGraph, parent: np.ndarray,
                      *, sample_size: int = 1024,
                      seed: int = 0, local: bool = True) -> FinishOutcome:
    """Afforest-style finish: only non-giant vertices touch their edges."""
    counters = OpCounters()
    n = graph.num_vertices
    if n == 0:
        return FinishOutcome(parent, counters, 0)
    roots, giant, find_hops = _sampled_giant(parent, sample_size, seed,
                                             local)
    charge_finds(counters, find_hops)
    outside = np.flatnonzero(roots != giant)
    total = 0
    if outside.size:
        from ..core.kernels import concat_adjacency
        targets, counts = concat_adjacency(graph, outside)
        sources = np.repeat(outside, counts)
        if targets.size:
            links, hops = union_edge_batch(parent, sources,
                                           targets.astype(np.int64),
                                           local=local)
            total = int(targets.size)
            charge_union(counters, total, links, hops)
    counters.sequential_accesses += n
    counters.label_writes += n
    return FinishOutcome(flatten_parents(parent), counters, total)


def finish_all_edges(graph: CSRGraph, parent: np.ndarray,
                     *, seed: int = 0, local: bool = True) -> FinishOutcome:
    """Union every edge — correct regardless of sampling quality."""
    counters = OpCounters()
    src = graph.edge_sources()
    dst = graph.indices.astype(np.int64)
    once = src < dst
    eu, ev = src[once], dst[once]
    total = int(eu.size)
    if total:
        links, hops = union_edge_batch(parent, eu, ev, local=local)
        charge_union(counters, total, links, hops, endpoint_reads=2)
    n = graph.num_vertices
    counters.sequential_accesses += n
    counters.label_writes += n
    return FinishOutcome(flatten_parents(parent), counters, total)


def finish_thrifty_pull(graph: CSRGraph, parent: np.ndarray,
                        *, sample_size: int = 1024,
                        seed: int = 0, local: bool = True) -> FinishOutcome:
    """Finish with zero-convergent label propagation.

    The sampled components become the initial labels (root id + 1);
    the most frequent sampled component gets label 0 (Zero Planting on
    a *component* rather than a single hub).  A zero-convergent,
    unified-array pull loop then completes all components at once.
    """
    counters = OpCounters()
    n = graph.num_vertices
    if n == 0:
        return FinishOutcome(parent, counters, 0)
    roots, giant, find_hops = _sampled_giant(parent, sample_size, seed,
                                             local)
    charge_finds(counters, find_hops)
    labels = roots.astype(np.int64) + 1
    labels[roots == giant] = 0
    counters.sequential_accesses += n
    counters.label_writes += n
    total = 0
    from ..core.kernels import pull_block, zero_cut_scan_lengths
    while True:
        skip = labels == 0
        scanned = int(zero_cut_scan_lengths(graph, labels, 0, n,
                                            skip).sum())
        new, changed = pull_block(graph, labels, 0, n)
        counters.record_pull_scan(scanned, n)
        total += scanned
        if not changed.any():
            break
        labels[changed] = new[changed]
        counters.record_label_commits(int(changed.sum()), random=False)
    return FinishOutcome(labels, counters, total)


FINISH_STRATEGIES = {
    "skip-giant": finish_skip_giant,
    "all-edges": finish_all_edges,
    "thrifty-pull": finish_thrifty_pull,
}

"""ConnectIt-style sampling x finish CC framework (Related Work)."""

from .finish import FINISH_STRATEGIES
from .framework import connectit_cc, connectit_design_space
from .sampling import SAMPLING_STRATEGIES

__all__ = [
    "connectit_cc",
    "connectit_design_space",
    "SAMPLING_STRATEGIES",
    "FINISH_STRATEGIES",
]

"""Out-of-core blocked-graph tier.

An on-disk blocked-CSR format (:mod:`repro.storage.format`), a
bounded LRU block cache (:mod:`repro.storage.cache`), a streaming
graph handle duck-compatible with ``CSRGraph``
(:mod:`repro.storage.blocked`), and an alpha-beta disk cost model
(:mod:`repro.storage.iomodel`).  Storage-mode names follow the
kernel-backend convention (:mod:`repro.storage.modes`):
``"resident"`` is the default and folds to ``None``.

Typical use — pack once, stream forever::

    from repro.storage import write_blocked, BlockedGraph
    write_blocked(graph, "web.rbcsr")
    bg = BlockedGraph.open("web.rbcsr", resident_bytes=256 << 20)
    result = thrifty_cc(bg)          # bit-identical to the in-memory run
    result.extras["io"]              # blocks read / bytes / modeled ms

or let the engine spool transparently::

    thrifty_cc(graph, storage="out_of_core", resident_bytes=256 << 20)
"""

from .blocked import BlockedGraph, BlockedReader, READER_MODES
from .cache import BlockCache
from .format import (BLOCKED_MAGIC, BLOCKED_SUFFIX, BLOCKED_VERSION,
                     DEFAULT_EDGES_PER_BLOCK, HEADER_SIZE, BlockedFormatError,
                     BlockedHeader, is_blocked_file, read_header,
                     write_blocked)
from .iomodel import NVME_SSD, SATA_SSD, DiskSpec, simulate_io_time
from .modes import (DEFAULT_STORAGE, STORAGE_MODES, canonical_storage,
                    validate_storage)

__all__ = [
    "BLOCKED_MAGIC", "BLOCKED_SUFFIX", "BLOCKED_VERSION",
    "DEFAULT_EDGES_PER_BLOCK", "DEFAULT_STORAGE", "HEADER_SIZE",
    "NVME_SSD", "READER_MODES", "SATA_SSD", "STORAGE_MODES",
    "BlockCache", "BlockedFormatError", "BlockedGraph", "BlockedHeader",
    "BlockedReader", "DiskSpec", "canonical_storage", "is_blocked_file",
    "read_header", "simulate_io_time", "validate_storage", "write_blocked",
]

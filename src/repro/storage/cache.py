"""Bounded LRU cache over fixed-width index blocks.

The cache is the out-of-core tier's whole memory story: at most
``budget_bytes`` of edge-array blocks are resident at once, evictions
are strictly LRU, and *eviction happens before insertion* so the
resident total never exceeds the budget mid-operation (peak stays
under the budget whenever the budget covers at least one block —
asserted by ``benchmarks/test_ext_out_of_core.py`` from this
accounting).

Every miss is priced later as a disk fetch (see
:mod:`repro.storage.iomodel`), so the counters here are the ground
truth the IO cost model consumes — fetches, re-fetches of
previously-seen blocks (the "cache too small" signal), bytes moved,
and the resident high-water mark.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["BlockCache"]


class BlockCache:
    """LRU block cache with byte budget and fetch accounting.

    ``budget_bytes=None`` means unbounded (everything fetched stays
    resident — the degenerate "resident after first touch" mode used
    when no budget is configured).
    """

    def __init__(self, budget_bytes: int | None = None) -> None:
        if budget_bytes is not None and budget_bytes < 1:
            raise ValueError("budget_bytes must be >= 1 or None")
        self.budget_bytes = budget_bytes
        self._blocks: OrderedDict[int, np.ndarray] = OrderedDict()
        self._seen: set[int] = set()
        self.resident_bytes = 0
        self.peak_resident_bytes = 0
        self.hits = 0
        self.fetches = 0
        self.rereads = 0
        self.bytes_read = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, key: int) -> np.ndarray | None:
        """Return the cached block (refreshing recency) or ``None``."""
        arr = self._blocks.get(key)
        if arr is None:
            return None
        self._blocks.move_to_end(key)
        self.hits += 1
        return arr

    def fetch(self, key: int, loader) -> np.ndarray:
        """Return block ``key``, loading through ``loader`` on a miss.

        A miss counts one fetch (and one reread when the block was
        fetched before and has since been evicted); the loaded block is
        inserted after evicting enough LRU blocks to keep the resident
        total within budget.
        """
        arr = self.get(key)
        if arr is not None:
            return arr
        arr = loader(key)
        self.fetches += 1
        self.bytes_read += int(arr.nbytes)
        if key in self._seen:
            self.rereads += 1
        else:
            self._seen.add(key)
        self._insert(key, arr)
        return arr

    def _insert(self, key: int, arr: np.ndarray) -> None:
        nbytes = int(arr.nbytes)
        if self.budget_bytes is not None:
            # Evict-before-insert: the budget is never exceeded by
            # holding old + new simultaneously.  A single block larger
            # than the whole budget still gets inserted (the engine
            # must be able to read it) — the only case peak can top
            # the budget, and it is the caller's configuration error.
            while self._blocks and \
                    self.resident_bytes + nbytes > self.budget_bytes:
                self._evict_lru()
        self._blocks[key] = arr
        self.resident_bytes += nbytes
        if self.resident_bytes > self.peak_resident_bytes:
            self.peak_resident_bytes = self.resident_bytes

    def _evict_lru(self) -> None:
        _, old = self._blocks.popitem(last=False)
        self.resident_bytes -= int(old.nbytes)
        self.evictions += 1

    def clear(self) -> None:
        """Drop all resident blocks (counters are kept)."""
        self._blocks.clear()
        self.resident_bytes = 0

    def snapshot(self) -> dict[str, int]:
        """Copy of the counters, for before/after deltas."""
        return {
            "hits": self.hits,
            "fetches": self.fetches,
            "rereads": self.rereads,
            "bytes_read": self.bytes_read,
            "evictions": self.evictions,
            "peak_resident_bytes": self.peak_resident_bytes,
        }

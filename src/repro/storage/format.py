"""On-disk blocked-CSR format (``.rbcsr``).

Layout, all little-endian::

    header   48 bytes, struct "<8sIIIIQQQ":
             magic            b"RBCSR01\\n"
             version          1
             endian canary    0x01020304 (readers on a big-endian host
                              would see 0x04030201 and refuse)
             index item size  4 (int32 indices) or 8 (int64)
             flags            reserved, 0
             num_vertices     n
             num_edges        m (directed half-edges, == indices size)
             edges_per_block  fixed logical block width
    indptr   (n + 1) x int64
    indices  m x int32|int64

Blocks are *logical* fixed-width spans of the indices array: block
``b`` covers positions ``[b * edges_per_block,
min((b + 1) * edges_per_block, m))`` — the last block may be ragged.
Fixed widths keep the fetch path trivially seekable (offset is a
multiply) and make the cache budget arithmetic exact; they do not
need to align with the engine's per-vertex blocks, which address the
file through :class:`repro.storage.blocked.BlockedGraph`.

The indptr stays resident by design — for the skewed graphs this
reproduction targets it is tiny next to the edge array (|V|+1 vs
2|E| entries), and every streaming CC system in the related work
(badjgraph-style blocked LP included) keeps the offsets hot.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

__all__ = ["BLOCKED_MAGIC", "BLOCKED_SUFFIX", "BLOCKED_VERSION",
           "DEFAULT_EDGES_PER_BLOCK", "HEADER_SIZE", "BlockedFormatError",
           "BlockedHeader", "is_blocked_file", "read_header",
           "write_blocked"]

BLOCKED_MAGIC = b"RBCSR01\n"
BLOCKED_VERSION = 1
BLOCKED_SUFFIX = ".rbcsr"
_ENDIAN_CANARY = 0x01020304
_HEADER_STRUCT = struct.Struct("<8sIIIIQQQ")
HEADER_SIZE = _HEADER_STRUCT.size  # 48

DEFAULT_EDGES_PER_BLOCK = 1 << 16

_INDPTR_DTYPE = np.dtype("<i8")
_ITEMSIZE_TO_DTYPE = {4: np.dtype("<i4"), 8: np.dtype("<i8")}


class BlockedFormatError(ValueError):
    """A blocked-CSR file is malformed (bad magic, truncation, ...)."""


@dataclass(frozen=True)
class BlockedHeader:
    """Decoded header of a blocked-CSR file."""

    num_vertices: int
    num_edges: int
    edges_per_block: int
    index_dtype: np.dtype

    @property
    def num_blocks(self) -> int:
        """Logical block count (0 for an empty edge array)."""
        epb = self.edges_per_block
        return (self.num_edges + epb - 1) // epb

    @property
    def indptr_offset(self) -> int:
        return HEADER_SIZE

    @property
    def indices_offset(self) -> int:
        return HEADER_SIZE + (self.num_vertices + 1) * _INDPTR_DTYPE.itemsize

    @property
    def file_size(self) -> int:
        return (self.indices_offset
                + self.num_edges * self.index_dtype.itemsize)

    def block_span(self, block: int) -> tuple[int, int]:
        """Index positions ``[start, stop)`` covered by ``block``."""
        start = block * self.edges_per_block
        stop = min(start + self.edges_per_block, self.num_edges)
        return start, stop

    def block_nbytes(self, block: int) -> int:
        start, stop = self.block_span(block)
        return (stop - start) * self.index_dtype.itemsize


def write_blocked(graph, path, *, edges_per_block: int = DEFAULT_EDGES_PER_BLOCK,
                  dtype=None) -> BlockedHeader:
    """Write ``graph`` (anything with ``indptr``/``indices``) to ``path``.

    ``dtype`` overrides the index dtype (int32/int64); by default the
    graph's own indices dtype is kept so a round trip is bit-identical
    — :class:`~repro.graph.csr.CSRGraph` coerces small graphs to int32,
    and the blocked file must agree for the engines to see the same
    arrays.
    """
    if edges_per_block < 1:
        raise ValueError("edges_per_block must be >= 1")
    indptr = np.ascontiguousarray(graph.indptr, dtype=_INDPTR_DTYPE)
    index_dtype = np.dtype(dtype) if dtype is not None \
        else np.dtype(graph.indices.dtype)
    if index_dtype.itemsize not in _ITEMSIZE_TO_DTYPE:
        raise ValueError(
            f"index dtype must be int32 or int64, got {index_dtype}")
    index_dtype = _ITEMSIZE_TO_DTYPE[index_dtype.itemsize]
    num_vertices = int(indptr.size - 1)
    num_edges = int(indptr[-1]) if indptr.size else 0
    header = BlockedHeader(num_vertices=num_vertices, num_edges=num_edges,
                           edges_per_block=int(edges_per_block),
                           index_dtype=index_dtype)
    packed = _HEADER_STRUCT.pack(
        BLOCKED_MAGIC, BLOCKED_VERSION, _ENDIAN_CANARY,
        index_dtype.itemsize, 0, num_vertices, num_edges,
        int(edges_per_block))
    with open(path, "wb") as fh:
        fh.write(packed)
        fh.write(indptr.tobytes())
        # Stream the indices out block-by-block so writing never needs
        # a second resident copy of the edge array (the indices object
        # may itself be lazy).
        indices = graph.indices
        for start in range(0, num_edges, int(edges_per_block)):
            stop = min(start + int(edges_per_block), num_edges)
            chunk = np.ascontiguousarray(indices[start:stop],
                                         dtype=index_dtype)
            fh.write(chunk.tobytes())
    return header


def read_header(path) -> BlockedHeader:
    """Decode and validate the header of a blocked-CSR file.

    Raises :class:`BlockedFormatError` on bad magic, unsupported
    version, foreign endianness, unknown index width, or a file whose
    size disagrees with the header (truncation / trailing garbage).
    """
    with open(path, "rb") as fh:
        raw = fh.read(HEADER_SIZE)
        if len(raw) < HEADER_SIZE:
            raise BlockedFormatError(
                f"{path}: truncated header ({len(raw)} of "
                f"{HEADER_SIZE} bytes)")
        (magic, version, canary, itemsize, _flags,
         num_vertices, num_edges, edges_per_block) = _HEADER_STRUCT.unpack(raw)
        if magic != BLOCKED_MAGIC:
            raise BlockedFormatError(
                f"{path}: bad magic {magic!r} (expected {BLOCKED_MAGIC!r})")
        if version != BLOCKED_VERSION:
            raise BlockedFormatError(
                f"{path}: unsupported blocked-CSR version {version} "
                f"(reader supports {BLOCKED_VERSION})")
        if canary != _ENDIAN_CANARY:
            raise BlockedFormatError(
                f"{path}: endianness canary mismatch "
                f"(0x{canary:08x}); file written on a foreign-endian host")
        if itemsize not in _ITEMSIZE_TO_DTYPE:
            raise BlockedFormatError(
                f"{path}: unknown index item size {itemsize} "
                f"(expected 4 or 8)")
        if edges_per_block < 1:
            raise BlockedFormatError(
                f"{path}: edges_per_block must be >= 1, got "
                f"{edges_per_block}")
        header = BlockedHeader(
            num_vertices=int(num_vertices), num_edges=int(num_edges),
            edges_per_block=int(edges_per_block),
            index_dtype=_ITEMSIZE_TO_DTYPE[itemsize])
        fh.seek(0, 2)
        actual = fh.tell()
        if actual != header.file_size:
            raise BlockedFormatError(
                f"{path}: file size {actual} does not match header "
                f"(expected {header.file_size}); truncated or corrupt")
    return header


def is_blocked_file(path) -> bool:
    """True when ``path`` is a readable file starting with the magic."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(BLOCKED_MAGIC)) == BLOCKED_MAGIC
    except OSError:
        return False

"""Storage-mode names and canonicalization.

Mirrors :mod:`repro.core.backends`: ``"resident"`` is the default
mode (the whole CSR lives in RAM) and folds to ``None`` so both
spellings share one ResultCache / feedback key, exactly like
``canonical_backend`` folds ``"numpy"``.  ``"out_of_core"`` streams
the edge array from a blocked on-disk file through a bounded block
cache (see :mod:`repro.storage.blocked`).
"""

from __future__ import annotations

__all__ = ["DEFAULT_STORAGE", "STORAGE_MODES", "canonical_storage",
           "validate_storage"]

DEFAULT_STORAGE = "resident"

STORAGE_MODES = ("resident", "out_of_core")


def validate_storage(name: str | None) -> None:
    """Raise ``ValueError`` unless ``name`` is a known storage mode.

    ``None`` is always valid (it means "the default mode").
    """
    if name is None:
        return
    if not isinstance(name, str):
        raise TypeError(
            f"storage mode must be a string or None, got {type(name).__name__}")
    if name not in STORAGE_MODES:
        raise ValueError(
            f"unknown storage mode {name!r}; available modes: "
            f"{list(STORAGE_MODES)}")


def canonical_storage(name: str | None) -> str | None:
    """Fold the default storage spelling to ``None``.

    ``canonical_storage(None) == canonical_storage("resident") == None``
    so options naming the default explicitly hash and compare equal to
    options that omit it — one cache key, one feedback key (the
    ``canonical_backend`` convention).  Unknown names raise listing the
    available modes.
    """
    validate_storage(name)
    return None if name == DEFAULT_STORAGE else name

"""Disk-bandwidth pricing for out-of-core block fetches.

The same alpha-beta shape the distributed tier uses for the fabric
(:class:`repro.distributed.costmodel.NetworkSpec`): every fetch pays a
fixed latency alpha (seek/queue/syscall) plus size/bandwidth beta.
The engine's block-cache counters (fetches + bytes, see
:class:`repro.storage.cache.BlockCache`) are the inputs; the result
lands in ``CCResult.extras["io"]["modeled_ms"]`` and is added to the
simulated run time by the serving layer, exactly as ``extras["comm"]``
is priced by ``simulate_distributed_time``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NVME_SSD", "SATA_SSD", "DiskSpec", "simulate_io_time"]


@dataclass(frozen=True)
class DiskSpec:
    """Alpha-beta disk model: per-fetch latency + sequential bandwidth."""

    name: str
    latency_us: float
    bandwidth_mbps: float

    def __post_init__(self) -> None:
        if self.latency_us < 0:
            raise ValueError("latency_us must be >= 0")
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth_mbps must be > 0")

    def transfer_ms(self, num_bytes: int, *, num_fetches: int = 1) -> float:
        """Milliseconds to serve ``num_fetches`` reads totalling
        ``num_bytes`` bytes: alpha per fetch + bytes over bandwidth."""
        alpha = num_fetches * self.latency_us / 1e3
        beta = num_bytes / (self.bandwidth_mbps * 1e6) * 1e3
        return alpha + beta


#: Datacenter NVMe: ~80us effective read latency, ~3.5 GB/s sequential.
NVME_SSD = DiskSpec(name="nvme-ssd", latency_us=80.0, bandwidth_mbps=3500.0)

#: SATA SSD: ~150us latency, ~550 MB/s sequential.
SATA_SSD = DiskSpec(name="sata-ssd", latency_us=150.0, bandwidth_mbps=550.0)


def simulate_io_time(io_record: dict, disk: DiskSpec = NVME_SSD) -> float:
    """Price an ``extras["io"]`` record (or any dict with the same
    counters) in milliseconds on ``disk``.

    Counts both the on-demand block fetches and the sequential setup
    pass (``setup_bytes``: the one-shot streaming scans for block
    groups / fingerprints, which bypass the cache).
    """
    fetches = int(io_record.get("blocks_read", 0))
    bytes_read = int(io_record.get("bytes_read", 0))
    setup_blocks = int(io_record.get("setup_blocks", 0))
    setup_bytes = int(io_record.get("setup_bytes", 0))
    return disk.transfer_ms(bytes_read + setup_bytes,
                            num_fetches=max(1, fetches + setup_blocks))

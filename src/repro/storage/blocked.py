"""Block-streaming graph handle over the on-disk blocked-CSR format.

:class:`BlockedGraph` is duck-compatible with
:class:`repro.graph.csr.CSRGraph` for everything the engines touch —
``indptr`` (resident, int64), ``degrees``, ``neighbors``,
``num_vertices``/``num_edges``, and an ``indices`` object that
supports exactly the access patterns the kernels use (contiguous
slices, fancy integer gathers, ``.dtype``, ``.astype``) — but the
edge array is never resident: every access goes through a bounded
LRU :class:`~repro.storage.cache.BlockCache`, so a Thrifty run's
peak edge-array memory is the configured ``resident_bytes`` budget,
not ``8|E|``.

Because the kernels see the same array *content* either way, a run on
a :class:`BlockedGraph` is bit-identical to the in-memory engine —
labels, counters, traces (asserted by ``tests/test_out_of_core.py``
and ``benchmarks/test_ext_out_of_core.py``).  What changes is the
physical fetch schedule, which the cache counters record and
:mod:`repro.storage.iomodel` prices as disk time.

Setup scans (the one-shot intra-block-groups pass, fingerprinting,
full materialization) stream the file sequentially *bypassing* the
cache and are accounted separately as ``setup_bytes`` — they happen
once per run/registration, and keeping them out of the fetch counters
makes the per-iteration fetch savings of converged-block skipping
directly measurable.
"""

from __future__ import annotations

import numpy as np

from .cache import BlockCache
from .format import BlockedHeader, read_header
from .iomodel import NVME_SSD, DiskSpec, simulate_io_time

__all__ = ["BlockedGraph", "BlockedReader", "READER_MODES"]

READER_MODES = ("mmap", "buffered")

_INDPTR_DTYPE = np.dtype("<i8")


class BlockedReader:
    """Raw span reads from a blocked-CSR file (mmap or buffered).

    Both modes return identical bytes; ``mmap`` copies out of a
    read-only memory map, ``buffered`` seeks and reads through a file
    handle.  ``tests/test_storage.py`` asserts bit-identity.
    """

    def __init__(self, path, header: BlockedHeader, mode: str = "mmap"):
        if mode not in READER_MODES:
            raise ValueError(
                f"unknown reader mode {mode!r}; available modes: "
                f"{list(READER_MODES)}")
        self.path = str(path)
        self.header = header
        self.mode = mode
        self._fh = None
        self._mm_indices = None
        if mode == "mmap":
            if header.num_edges:
                self._mm_indices = np.memmap(
                    self.path, mode="r", dtype=header.index_dtype,
                    offset=header.indices_offset,
                    shape=(header.num_edges,))
        else:
            self._fh = open(self.path, "rb")

    def read_indptr(self) -> np.ndarray:
        """The resident row-offset array (always int64)."""
        count = self.header.num_vertices + 1
        with open(self.path, "rb") as fh:
            fh.seek(self.header.indptr_offset)
            data = fh.read(count * _INDPTR_DTYPE.itemsize)
        return np.frombuffer(data, dtype=_INDPTR_DTYPE).copy()

    def read_span(self, start: int, stop: int) -> np.ndarray:
        """Copy of ``indices[start:stop]`` from disk."""
        dtype = self.header.index_dtype
        if stop <= start:
            return np.empty(0, dtype=dtype)
        if self._mm_indices is not None:
            return np.array(self._mm_indices[start:stop])
        self._fh.seek(self.header.indices_offset + start * dtype.itemsize)
        data = self._fh.read((stop - start) * dtype.itemsize)
        return np.frombuffer(data, dtype=dtype)

    def read_block(self, block: int) -> np.ndarray:
        start, stop = self.header.block_span(block)
        return self.read_span(start, stop)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._mm_indices = None


class _LazyIndices:
    """Edge array facade: kernel access patterns, cache-backed fetches.

    Supports the exact surface the numpy kernels and the engines use
    on ``graph.indices``: ``len``/``.size``/``.shape``/``.dtype``,
    contiguous and stepped slices, scalar reads, fancy integer-array
    gathers, and ``.astype`` / ``np.asarray`` (which materialize the
    whole array via a sequential setup scan — reference checkers only).
    """

    def __init__(self, graph: "BlockedGraph"):
        self._graph = graph

    @property
    def dtype(self) -> np.dtype:
        return self._graph.header.index_dtype

    @property
    def size(self) -> int:
        return self._graph.header.num_edges

    @property
    def shape(self) -> tuple[int]:
        return (self._graph.header.num_edges,)

    @property
    def nbytes(self) -> int:
        return self._graph.header.num_edges * self.dtype.itemsize

    def __len__(self) -> int:
        return self._graph.header.num_edges

    def __getitem__(self, key):
        g = self._graph
        if isinstance(key, slice):
            start, stop, step = key.indices(g.header.num_edges)
            if step == 1:
                return g._read_range(start, stop)
            # Stepped/reversed slices are rare (sampling probes); read
            # the covering range once and subsample it.
            lo, hi = (start, stop) if step > 0 else (stop + 1, start + 1)
            span = g._read_range(max(lo, 0), max(hi, 0))
            return span[::step] if step > 0 else span[::-1][::-step]
        if isinstance(key, (int, np.integer)):
            idx = int(key)
            if idx < 0:
                idx += g.header.num_edges
            if not 0 <= idx < g.header.num_edges:
                raise IndexError(f"index {key} out of range")
            block, base = divmod(idx, g.header.edges_per_block)
            return g._block(block)[base]
        pos = np.asarray(key)
        if pos.dtype == bool:
            pos = np.flatnonzero(pos)
        return g._gather(pos.astype(np.int64, copy=False))

    def astype(self, dtype, copy: bool = True) -> np.ndarray:
        del copy  # always a fresh array; signature mirrors ndarray
        return self._graph._materialize_indices().astype(dtype, copy=False)

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        del copy
        arr = self._graph._materialize_indices()
        return arr if dtype is None else arr.astype(dtype, copy=False)

    def __repr__(self) -> str:
        return (f"_LazyIndices(size={self.size}, dtype={self.dtype}, "
                f"path={self._graph.path!r})")


class BlockedGraph:
    """CSR graph whose edge array streams from a blocked file on demand.

    Open with :meth:`open`; nothing but the header and the indptr is
    read eagerly, so registering a 100 GB file costs megabytes.  The
    ``resident_bytes`` budget bounds the block cache (``None`` =
    unbounded).  ``block_cache`` doubles as the duck-type marker the
    engine and service use to recognize an already-blocked graph.
    """

    def __init__(self, path, header: BlockedHeader, reader: BlockedReader,
                 indptr: np.ndarray, *, resident_bytes: int | None = None):
        self.path = str(path)
        self.header = header
        self.reader = reader
        self.resident_bytes = resident_bytes
        self.block_cache = BlockCache(budget_bytes=resident_bytes)
        self.setup_bytes = 0
        self.setup_blocks = 0
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indptr.flags.writeable = False
        self.indptr = indptr
        self._indices = _LazyIndices(self)
        self._degrees: np.ndarray | None = None

    @classmethod
    def open(cls, path, *, resident_bytes: int | None = None,
             mode: str = "mmap") -> "BlockedGraph":
        """Open a blocked-CSR file without materializing its edges."""
        header = read_header(path)
        reader = BlockedReader(path, header, mode=mode)
        indptr = reader.read_indptr()
        return cls(path, header, reader, indptr,
                   resident_bytes=resident_bytes)

    def close(self) -> None:
        self.reader.close()
        self.block_cache.clear()

    # -- CSRGraph duck surface -------------------------------------------

    @property
    def indices(self) -> _LazyIndices:
        return self._indices

    @property
    def num_vertices(self) -> int:
        return self.header.num_vertices

    @property
    def num_edges(self) -> int:
        return self.header.num_edges

    @property
    def num_undirected_edges(self) -> int:
        return self.header.num_edges // 2

    @property
    def degrees(self) -> np.ndarray:
        if self._degrees is None:
            degrees = np.diff(self.indptr)
            degrees.flags.writeable = False
            self._degrees = degrees
        return self._degrees

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        return self._read_range(int(self.indptr[v]), int(self.indptr[v + 1]))

    def max_degree_vertex(self) -> int:
        if self.num_vertices == 0:
            raise ValueError("empty graph has no max-degree vertex")
        return int(np.argmax(self.degrees))

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < nbrs.size and nbrs[pos] == v)

    def edge_sources(self) -> np.ndarray:
        return np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), self.degrees)

    # -- block fetch path -------------------------------------------------

    def _block(self, block: int) -> np.ndarray:
        return self.block_cache.fetch(block, self.reader.read_block)

    def _read_range(self, start: int, stop: int) -> np.ndarray:
        """``indices[start:stop]`` assembled from cached blocks."""
        dtype = self.header.index_dtype
        if stop <= start:
            return np.empty(0, dtype=dtype)
        epb = self.header.edges_per_block
        b0 = start // epb
        b1 = (stop - 1) // epb
        if b0 == b1:
            base = b0 * epb
            return self._block(b0)[start - base:stop - base]
        parts = []
        for b in range(b0, b1 + 1):
            base = b * epb
            arr = self._block(b)
            lo = max(start - base, 0)
            hi = min(stop - base, arr.size)
            parts.append(arr[lo:hi])
        return np.concatenate(parts)

    def _gather(self, pos: np.ndarray) -> np.ndarray:
        """Fancy gather ``indices[pos]`` grouped by storage block."""
        dtype = self.header.index_dtype
        flat = pos.reshape(-1)
        out = np.empty(flat.size, dtype=dtype)
        if flat.size:
            epb = self.header.edges_per_block
            blocks = flat // epb
            order = np.argsort(blocks, kind="stable")
            sorted_blocks = blocks[order]
            cuts = np.flatnonzero(np.diff(sorted_blocks)) + 1
            starts = np.concatenate(([0], cuts))
            ends = np.concatenate((cuts, [flat.size]))
            for s, e in zip(starts, ends):
                sel = order[s:e]
                block = int(sorted_blocks[s])
                arr = self._block(block)
                out[sel] = arr[flat[sel] - block * epb]
        return out.reshape(pos.shape)

    # -- setup-pass streaming (cache bypass, accounted separately) --------

    def _read_span_setup(self, start: int, stop: int) -> np.ndarray:
        """One sequential read outside the cache (setup accounting)."""
        arr = self.reader.read_span(start, stop)
        self.setup_bytes += int(arr.nbytes)
        self.setup_blocks += 1
        return arr

    def iter_index_blocks(self):
        """Yield the index array as contiguous in-order chunks.

        Streaming equivalent of reading ``indices`` front to back —
        used for fingerprinting and materialization; bypasses the
        cache (setup accounting)."""
        for block in range(self.header.num_blocks):
            start, stop = self.header.block_span(block)
            yield self._read_span_setup(start, stop)

    def _materialize_indices(self) -> np.ndarray:
        chunks = list(self.iter_index_blocks())
        if not chunks:
            return np.empty(0, dtype=self.header.index_dtype)
        return np.concatenate(chunks)

    def materialize(self):
        """Full in-memory :class:`~repro.graph.csr.CSRGraph` copy."""
        from ..graph.csr import CSRGraph
        return CSRGraph(self.indptr.copy(), self._materialize_indices())

    def to_edge_list(self):
        from ..graph.coo import EdgeList
        return EdgeList(src=self.edge_sources(),
                        dst=self._materialize_indices().astype(np.int64),
                        num_vertices=self.num_vertices)

    # -- engine hooks -----------------------------------------------------

    def intra_block_groups(self, block_bounds: np.ndarray) -> np.ndarray:
        """Streaming replacement for the backend's intra-block CC.

        ``block_bounds`` are the engine's ascending block *ends*
        (last == n), exactly as the backend kernel receives them.  An
        intra-block edge never crosses an engine block, so each block's
        internal components are independent; one sequential setup scan
        per block computes the same canonical fixpoint (``groups[v]`` =
        minimum vertex id of v's internal component) the global
        pointer-jumping kernel reaches — bit-identical by uniqueness of
        that fixpoint.
        """
        n = self.num_vertices
        groups = np.arange(n, dtype=np.int64)
        if n == 0 or self.num_edges == 0:
            return groups
        indptr = self.indptr
        prev = 0
        for end in np.asarray(block_bounds, dtype=np.int64):
            lo, hi = prev, int(end)
            prev = hi
            if hi <= lo:
                continue
            e0, e1 = int(indptr[lo]), int(indptr[hi])
            if e1 == e0:
                continue
            dst = self._read_span_setup(e0, e1).astype(np.int64)
            src = np.repeat(np.arange(lo, hi, dtype=np.int64),
                            np.diff(indptr[lo:hi + 1]))
            internal = (dst >= lo) & (dst < hi)
            eu = src[internal] - lo
            ev = dst[internal] - lo
            parent = np.arange(hi - lo, dtype=np.int64)
            while eu.size:
                while True:
                    nxt = parent[parent]
                    if np.array_equal(nxt, parent):
                        break
                    parent = nxt
                ru, rv = parent[eu], parent[ev]
                cross = ru != rv
                eu, ev, ru, rv = eu[cross], ev[cross], ru[cross], rv[cross]
                if eu.size == 0:
                    break
                lo_r = np.minimum(ru, rv)
                hi_r = np.maximum(ru, rv)
                np.minimum.at(parent, hi_r, lo_r)
            while True:
                nxt = parent[parent]
                if np.array_equal(nxt, parent):
                    break
                parent = nxt
            groups[lo:hi] = parent + lo
        return groups

    # -- IO accounting ----------------------------------------------------

    def io_snapshot(self) -> dict[str, int]:
        """Current fetch/setup counters, for before/after deltas."""
        snap = self.block_cache.snapshot()
        snap["setup_bytes"] = self.setup_bytes
        snap["setup_blocks"] = self.setup_blocks
        return snap

    def io_record(self, since: dict[str, int] | None = None,
                  disk: DiskSpec = NVME_SSD) -> dict:
        """The ``extras["io"]`` payload: fetch deltas + modeled disk ms.

        ``since`` is an earlier :meth:`io_snapshot`; counters are
        reported relative to it (``peak_resident_bytes`` is absolute —
        a high-water mark has no meaningful delta).
        """
        now = self.io_snapshot()
        base = since or {}
        record = {
            "blocks_read": now["fetches"] - base.get("fetches", 0),
            "blocks_reread": now["rereads"] - base.get("rereads", 0),
            "block_hits": now["hits"] - base.get("hits", 0),
            "bytes_read": now["bytes_read"] - base.get("bytes_read", 0),
            "evictions": now["evictions"] - base.get("evictions", 0),
            "setup_blocks": now["setup_blocks"] - base.get("setup_blocks", 0),
            "setup_bytes": now["setup_bytes"] - base.get("setup_bytes", 0),
            "peak_resident_bytes": now["peak_resident_bytes"],
            "budget_bytes": self.resident_bytes,
            "edges_per_block": self.header.edges_per_block,
            "disk": disk.name,
        }
        record["modeled_ms"] = simulate_io_time(record, disk)
        return record

    def __repr__(self) -> str:
        return (f"BlockedGraph(n={self.num_vertices}, m={self.num_edges}, "
                f"edges_per_block={self.header.edges_per_block}, "
                f"budget={self.resident_bytes}, mode={self.reader.mode!r}, "
                f"path={self.path!r})")

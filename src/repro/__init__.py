"""Thrifty Label Propagation — CLUSTER 2021 reproduction.

Public API highlights:

>>> from repro import connected_components
>>> from repro.graph import rmat_graph
>>> g = rmat_graph(12, 8, seed=1)
>>> result = connected_components(g, method="thrifty")
>>> result.num_components >= 1
True

Subpackages:

* :mod:`repro.graph` — CSR graphs, generators, dataset surrogates
* :mod:`repro.core` — Thrifty, DO-LP, the shared LP engine
* :mod:`repro.baselines` — SV, JT, Afforest, BFS-CC
* :mod:`repro.parallel` — simulated parallel runtime
* :mod:`repro.instrument` — counters, PAPI proxies, cost model
* :mod:`repro.experiments` — harness regenerating every paper artifact
"""

from .api import ALGORITHMS, connected_components, num_components
from .core import CCResult, LPOptions, dolp_cc, thrifty_cc, unified_dolp_cc
from .parallel import EPYC, MACHINES, SKYLAKEX, MachineSpec
from .validate import (
    canonicalize,
    check_labels_consistent,
    same_partition,
    validate_against_reference,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ALGORITHMS",
    "connected_components",
    "num_components",
    "CCResult",
    "LPOptions",
    "thrifty_cc",
    "dolp_cc",
    "unified_dolp_cc",
    "MachineSpec",
    "SKYLAKEX",
    "EPYC",
    "MACHINES",
    "same_partition",
    "canonicalize",
    "validate_against_reference",
    "check_labels_consistent",
]

"""Thrifty Label Propagation — CLUSTER 2021 reproduction.

Public API highlights:

>>> from repro import connected_components, ThriftyOptions
>>> from repro.graph import rmat_graph
>>> g = rmat_graph(12, 8, seed=1)
>>> result = connected_components(g, method="thrifty",
...                               options=ThriftyOptions(threshold=0.05))
>>> result.num_components >= 1
True

``method="auto"`` routes through the structure-aware planner
(:mod:`repro.service`), and :class:`repro.service.CCService` serves
repeated workloads with a content-addressed result cache.

Subpackages:

* :mod:`repro.graph` — CSR graphs, generators, dataset surrogates
* :mod:`repro.core` — Thrifty, DO-LP, the shared LP engine
* :mod:`repro.baselines` — SV, JT, Afforest, BFS-CC
* :mod:`repro.parallel` — simulated parallel runtime
* :mod:`repro.instrument` — counters, PAPI proxies, cost model
* :mod:`repro.experiments` — harness regenerating every paper artifact
* :mod:`repro.service` — registry, auto-routing planner, result cache
* :mod:`repro.distributed` — sharded CC tier on a simulated BSP fabric
"""

from .api import ALGORITHMS, AUTO_METHOD, connected_components, num_components
from .core import CCResult, LPOptions, dolp_cc, thrifty_cc, unified_dolp_cc
from .options import (
    OPTION_TYPES,
    AfforestOptions,
    BFSOptions,
    ConnectItOptions,
    DistributedOptions,
    DOLPOptions,
    FastSVOptions,
    JTOptions,
    KLAOptions,
    LPShortcutOptions,
    ThriftyOptions,
    UnifiedOptions,
    UnionFindOptions,
    options_for,
)
from .parallel import EPYC, MACHINES, SKYLAKEX, MachineSpec
from .validate import (
    canonicalize,
    check_labels_consistent,
    same_partition,
    validate_against_reference,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "ALGORITHMS",
    "AUTO_METHOD",
    "connected_components",
    "num_components",
    "CCResult",
    "LPOptions",
    "thrifty_cc",
    "dolp_cc",
    "unified_dolp_cc",
    "OPTION_TYPES",
    "options_for",
    "ThriftyOptions",
    "DOLPOptions",
    "UnifiedOptions",
    "UnionFindOptions",
    "JTOptions",
    "AfforestOptions",
    "FastSVOptions",
    "BFSOptions",
    "LPShortcutOptions",
    "ConnectItOptions",
    "KLAOptions",
    "DistributedOptions",
    "MachineSpec",
    "SKYLAKEX",
    "EPYC",
    "MACHINES",
    "same_partition",
    "canonicalize",
    "validate_against_reference",
    "check_labels_consistent",
]

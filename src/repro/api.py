"""Public front door: ``connected_components(graph, method=...)``.

Every algorithm from the paper's evaluation is addressable by name:

=============  ====================================================
``thrifty``    Thrifty Label Propagation (Algorithm 2, this paper)
``dolp``       Direction-Optimizing Label Propagation (Algorithm 1)
``unified``    DO-LP + Unified Labels Array (ablation variant)
``sv``         Shiloach-Vishkin
``fastsv``     FastSV (LP-flavoured SV variant, Related Work)
``lp-shortcut``  LP with pointer-jump shortcutting [65]
``jt``         Jayanti-Tarjan
``afforest``   Afforest
``bfs``        BFS-CC
``kla``        K-Level Asynchronous LP (Section VII, extension)
``connectit``  ConnectIt sampling x finish (Related Work, extension)
``distributed``  sharded tier on the simulated fabric (Section VII)
``auto``       structure-aware routing (Table IV crossover; service)
=============  ====================================================

Algorithm tunables travel as one typed options dataclass per method
(see :mod:`repro.options`); ``method="auto"`` consults the serving
layer's planner (:mod:`repro.service`), which probes the graph's
structure once and routes to Thrifty or Afforest according to the
measured Table IV crossover.  Every dispatch target accepts
``machine=`` uniformly: label-propagation methods schedule on it,
the baselines accept and ignore it (their execution is
machine-independent; the cost model applies it at timing).
"""

from __future__ import annotations

from typing import Any, Callable

from .baselines import afforest_cc, bfs_cc, fastsv_cc, \
    jayanti_tarjan_cc, shiloach_vishkin_cc
from .baselines.lp_shortcut import lp_shortcut_cc
from .connectit import connectit_cc
from .core import CCResult, dolp_cc, thrifty_cc, unified_dolp_cc
from .core.kla import KLAOptions, kla_cc
from .graph.csr import CSRGraph
from .options import DistributedOptions, resolve_options, to_call_kwargs
from .parallel.machine import SKYLAKEX, MachineSpec

__all__ = ["ALGORITHMS", "connected_components", "num_components"]


def _kla_adapter(graph: CSRGraph, *,
                 machine: MachineSpec = SKYLAKEX,
                 k: int = 4,
                 zero_planting: bool = True,
                 zero_convergence: bool = True,
                 max_supersteps: int = 1_000_000,
                 backend: str | None = None,
                 dataset: str = "") -> CCResult:
    """Adapter exposing KLA through the keyword-style front door.

    ``machine`` is accepted for interface uniformity; KLA's execution
    is bulk-synchronous and machine-independent here.
    """
    del machine
    return kla_cc(graph,
                  KLAOptions(k=k, zero_planting=zero_planting,
                             zero_convergence=zero_convergence,
                             max_supersteps=max_supersteps,
                             backend=backend),
                  dataset=dataset)


def _distributed_adapter(graph: CSRGraph, *,
                         machine: MachineSpec = SKYLAKEX,
                         num_ranks: int = 8,
                         algorithm: str = "lp",
                         partition: str = "block",
                         combining: bool = True,
                         zero_planting: bool = True,
                         zero_convergence: bool = True,
                         dedup_sends: bool = True,
                         max_supersteps: int = 100_000,
                         backend: str | None = None,
                         dataset: str = "") -> CCResult:
    """Adapter exposing the sharded tier through the front door.

    ``machine`` is accepted for interface uniformity; the distributed
    cost model prices per-node compute and the network separately (see
    :func:`repro.distributed.simulate_distributed_time`).
    """
    del machine
    from .distributed import distributed_cc
    return distributed_cc(
        graph,
        DistributedOptions(num_ranks=num_ranks, algorithm=algorithm,
                           partition=partition, combining=combining,
                           zero_planting=zero_planting,
                           zero_convergence=zero_convergence,
                           dedup_sends=dedup_sends,
                           max_supersteps=max_supersteps,
                           backend=backend),
        dataset=dataset)


#: Dispatch table.  Every entry has the uniform signature
#: ``fn(graph, *, machine=..., dataset=..., **option_fields)``.
ALGORITHMS: dict[str, Callable[..., CCResult]] = {
    "thrifty": thrifty_cc,
    "dolp": dolp_cc,
    "unified": unified_dolp_cc,
    "sv": shiloach_vishkin_cc,
    "fastsv": fastsv_cc,
    "lp-shortcut": lp_shortcut_cc,
    "jt": jayanti_tarjan_cc,
    "afforest": afforest_cc,
    "bfs": bfs_cc,
    "connectit": connectit_cc,
    "kla": _kla_adapter,
    "distributed": _distributed_adapter,
}

#: The planner-routed pseudo-method accepted by the front door.
AUTO_METHOD = "auto"


def connected_components(graph: CSRGraph,
                         method: str = "thrifty",
                         *,
                         machine: MachineSpec = SKYLAKEX,
                         dataset: str = "",
                         options: Any = None,
                         **kwargs) -> CCResult:
    """Compute connected components with the named algorithm.

    Parameters
    ----------
    graph:
        Canonical CSR graph (see :func:`repro.graph.build_graph`).
    method:
        One of :data:`ALGORITHMS`, or ``"auto"`` to let the serving
        layer's structure-aware planner pick the Table IV winner
        family for this graph.
    machine:
        Simulated machine (affects LP scheduling and all cost models).
    options:
        Typed options dataclass for the method (:mod:`repro.options`);
        ``None`` runs the algorithm's canonical configuration.
        ``"auto"`` routes with per-algorithm defaults and therefore
        accepts no options.
    kwargs:
        Deprecated keyword spelling of ``options`` (emits a
        :class:`DeprecationWarning`; will be removed).

    Returns
    -------
    CCResult
        Labels plus the full per-iteration trace.
    """
    if method == AUTO_METHOD:
        if options is not None or kwargs:
            raise ValueError(
                "method='auto' picks the algorithm itself and takes "
                "no options; pass an explicit method to tune it")
        from .service import plan_for_graph
        method = plan_for_graph(graph, machine=machine).method
    try:
        fn = ALGORITHMS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; pick one of "
            f"{sorted([*ALGORITHMS, AUTO_METHOD])}") from None
    opts = resolve_options(method, options, kwargs)
    return fn(graph, machine=machine, dataset=dataset,
              **to_call_kwargs(opts))


def num_components(graph: CSRGraph,
                   method: str = "thrifty",
                   *,
                   machine: MachineSpec = SKYLAKEX,
                   dataset: str = "",
                   options: Any = None,
                   **kwargs) -> int:
    """Number of connected components (convenience wrapper).

    Same signature as :func:`connected_components`; every argument is
    forwarded, so machine choice, dataset tagging and typed options
    behave identically to the full call.
    """
    return connected_components(
        graph, method, machine=machine, dataset=dataset,
        options=options, **kwargs).num_components

"""Public front door: ``connected_components(graph, method=...)``.

Every algorithm from the paper's evaluation is addressable by name:

=============  ====================================================
``thrifty``    Thrifty Label Propagation (Algorithm 2, this paper)
``dolp``       Direction-Optimizing Label Propagation (Algorithm 1)
``unified``    DO-LP + Unified Labels Array (ablation variant)
``sv``         Shiloach-Vishkin
``fastsv``     FastSV (LP-flavoured SV variant, Related Work)
``lp-shortcut``  LP with pointer-jump shortcutting [65]
``jt``         Jayanti-Tarjan
``afforest``   Afforest
``bfs``        BFS-CC
``kla``        K-Level Asynchronous LP (Section VII, extension)
``connectit``  ConnectIt sampling x finish (Related Work, extension)
=============  ====================================================
"""

from __future__ import annotations

from typing import Callable

from .baselines import afforest_cc, bfs_cc, fastsv_cc, \
    jayanti_tarjan_cc, shiloach_vishkin_cc
from .baselines.lp_shortcut import lp_shortcut_cc
from .connectit import connectit_cc
from .core import CCResult, dolp_cc, thrifty_cc, unified_dolp_cc
from .core.kla import KLAOptions, kla_cc
from .graph.csr import CSRGraph
from .parallel.machine import SKYLAKEX, MachineSpec

__all__ = ["ALGORITHMS", "connected_components", "num_components"]

ALGORITHMS: dict[str, Callable[..., CCResult]] = {
    "thrifty": thrifty_cc,
    "dolp": dolp_cc,
    "unified": unified_dolp_cc,
    "sv": shiloach_vishkin_cc,
    "fastsv": fastsv_cc,
    "lp-shortcut": lp_shortcut_cc,
    "jt": jayanti_tarjan_cc,
    "afforest": afforest_cc,
    "bfs": bfs_cc,
    "connectit": connectit_cc,
}


def _kla_adapter(graph: CSRGraph, *, k: int = 4,
                 zero_planting: bool = True,
                 zero_convergence: bool = True,
                 dataset: str = "") -> CCResult:
    """Adapter exposing KLA through the keyword-style front door."""
    return kla_cc(graph,
                  KLAOptions(k=k, zero_planting=zero_planting,
                             zero_convergence=zero_convergence),
                  dataset=dataset)


ALGORITHMS["kla"] = _kla_adapter

# Algorithms whose execution (not just cost model) depends on the
# machine's thread count / topology.
_MACHINE_AWARE = {"thrifty", "dolp", "unified"}


def connected_components(graph: CSRGraph,
                         method: str = "thrifty",
                         *,
                         machine: MachineSpec = SKYLAKEX,
                         dataset: str = "",
                         **kwargs) -> CCResult:
    """Compute connected components with the named algorithm.

    Parameters
    ----------
    graph:
        Canonical CSR graph (see :func:`repro.graph.build_graph`).
    method:
        One of :data:`ALGORITHMS`.
    machine:
        Simulated machine (affects LP scheduling and all cost models).
    kwargs:
        Forwarded to the algorithm (thresholds, seeds, ...).

    Returns
    -------
    CCResult
        Labels plus the full per-iteration trace.
    """
    try:
        fn = ALGORITHMS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; pick one of "
            f"{sorted(ALGORITHMS)}") from None
    if method in _MACHINE_AWARE:
        kwargs.setdefault("machine", machine)
    return fn(graph, dataset=dataset, **kwargs)


def num_components(graph: CSRGraph, method: str = "thrifty") -> int:
    """Number of connected components (convenience wrapper)."""
    return connected_components(graph, method).num_components

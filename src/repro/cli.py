"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands
-----------
``run``       run one algorithm on a dataset surrogate or edge-list file
``datasets``  list the Table II surrogate registry
``generate``  write a synthetic graph to an edge-list / npz file
``pack``      write a blocked on-disk CSR (.rbcsr) for out-of-core runs
``experiment``
              regenerate a paper table/figure by experiment id
``serve``     replay a request workload through the CC service

``run`` and ``trials`` accept ``--method auto`` (the structure-aware
planner picks the algorithm) and repeatable ``--opt KEY=VALUE`` flags
that populate the method's typed options dataclass.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import experiments
from .api import ALGORITHMS, AUTO_METHOD, connected_components
from .experiments.tables import format_table
from .graph import load
from .graph.datasets import ALL_DATASET_NAMES, DATASETS
from .graph.io import save_csr_npz, save_edge_list_text
from .instrument.costmodel import simulate_run_time
from .options import options_for
from .parallel.machine import MACHINES

_METHOD_CHOICES = sorted([*ALGORITHMS, AUTO_METHOD])

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "fig1": lambda a: _print_fig1(a),
    "table1": lambda a: _print_rows(experiments.table1_giant_component()),
    "table4": lambda a: _print_rows(
        experiments.table4_execution_times(datasets=a.datasets
                                           or ALL_DATASET_NAMES)),
    "table5": lambda a: _print_rows(experiments.table5_iterations()),
    "fig3": lambda a: _print_rows(
        experiments.fig3_dolp_convergence(a.datasets[0]
                                          if a.datasets else "Twtr")),
    "fig5": lambda a: _print_rows(experiments.fig5_work_reduction()),
    "fig6": lambda a: _print_rows(experiments.fig6_hw_counters()),
    "fig7": lambda a: _print_curves(
        experiments.fig7_8_convergence_comparison(
            a.datasets[0] if a.datasets else "Twtr")),
    "table6": lambda a: _print_rows(experiments.table6_initial_push()),
    "table7": lambda a: _print_table7(),
    "fig9": lambda a: _print_rows(experiments.fig9_10_ablation()),
    "routing": lambda a: _print_rows(
        experiments.auto_routing_table(
            datasets=a.datasets or ALL_DATASET_NAMES)),
    "regret": lambda a: _print_rows(
        experiments.routing_regret_table(
            datasets=a.datasets or None)),
}


def _parse_opt_value(text: str):
    low = text.lower()
    if low == "true":
        return True
    if low == "false":
        return False
    if low in ("none", "null"):
        return None
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    return text


def _options_from_args(args):
    """Build a typed options dataclass from ``--opt KEY=VALUE`` flags."""
    pairs = args.opt or []
    fields_ = {}
    for item in pairs:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise SystemExit(f"--opt expects KEY=VALUE, got {item!r}")
        fields_[key] = _parse_opt_value(value)
    if not fields_:
        return None
    if args.method == AUTO_METHOD:
        raise SystemExit("--method auto picks the algorithm itself and "
                         "takes no --opt flags")
    try:
        return options_for(args.method, **fields_)
    except (ValueError, TypeError) as exc:
        raise SystemExit(str(exc)) from None


def _print_rows(rows: list[dict]) -> None:
    if not rows:
        print("(no rows)")
        return
    headers = list(rows[0].keys())
    print(format_table(headers, [[r[h] for h in headers] for r in rows]))


def _print_fig1(args) -> None:
    for machine in ("SkylakeX", "Epyc"):
        out = experiments.fig1_speedup_summary(machine)
        print(format_table(
            ["machine", *out.keys()],
            [[machine, *(f"{v:.1f}x" for v in out.values())]],
            title=f"Thrifty geo-mean speedup ({machine})"))


def _print_curves(curves: dict[str, list[float]]) -> None:
    for name, series in curves.items():
        pts = " ".join(f"{x:.1f}" for x in series)
        print(f"{name:>8}: {pts}")


def _print_table7() -> None:
    out = experiments.table7_threshold()
    for threshold, rows in out.items():
        print(f"--- threshold = {100 * threshold:g}% ---")
        _print_rows(rows)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Thrifty Label Propagation reproduction toolkit")
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a CC algorithm")
    run.add_argument("input", help="dataset name (see `repro datasets`) "
                                   "or path to an edge-list/.npz file")
    run.add_argument("--method", default="thrifty",
                     choices=_METHOD_CHOICES)
    run.add_argument("--machine", default="SkylakeX",
                     choices=sorted(MACHINES))
    run.add_argument("--scale", type=float, default=1.0,
                     help="dataset scale factor (surrogates only)")
    run.add_argument("--opt", action="append", metavar="KEY=VALUE",
                     help="typed algorithm option (repeatable), e.g. "
                          "--opt threshold=0.05")
    run.add_argument("--trace", action="store_true",
                     help="print the per-iteration execution trace")

    sub.add_parser("datasets", help="list dataset surrogates")

    gen = sub.add_parser("generate", help="write a synthetic graph")
    gen.add_argument("dataset", help="dataset surrogate name")
    gen.add_argument("output", help="output path (.txt or .npz)")
    gen.add_argument("--scale", type=float, default=1.0)

    pack = sub.add_parser("pack",
                          help="write a blocked on-disk CSR (.rbcsr) "
                               "file for out-of-core runs")
    pack.add_argument("input", help="dataset name or graph file")
    pack.add_argument("output", help="output path (.rbcsr)")
    pack.add_argument("--scale", type=float, default=1.0)
    pack.add_argument("--edges-per-block", type=int, default=None,
                      help="edges per storage block (default 65536)")

    exp = sub.add_parser("experiment",
                         help="regenerate a paper table/figure")
    exp.add_argument("id", choices=sorted(_EXPERIMENTS))
    exp.add_argument("datasets", nargs="*",
                     help="optional dataset names to restrict to")

    srv = sub.add_parser("serve",
                         help="replay a request workload through the "
                              "CC service")
    srv.add_argument("datasets", nargs="+",
                     help="dataset surrogate names to request")
    srv.add_argument("--method", default=AUTO_METHOD,
                     choices=_METHOD_CHOICES)
    srv.add_argument("--machine", default="SkylakeX",
                     choices=sorted(MACHINES))
    srv.add_argument("--scale", type=float, default=1.0)
    srv.add_argument("--repeats", type=int, default=3,
                     help="how many times each dataset is requested")
    srv.add_argument("--cache-size", type=int, default=128)
    srv.add_argument("--budget-ms", type=float, default=None,
                     help="per-request simulated-time budget "
                          "(over-budget LP runs fall back to Afforest)")
    srv.add_argument("--edge-budget", type=int, default=None,
                     help="single-node edge capacity; auto-routed "
                          "graphs with more edges go to the "
                          "distributed tier")
    srv.add_argument("--resident-budget", type=int, default=None,
                     help="resident-memory byte budget; auto-routed "
                          "graphs whose edge array exceeds it run "
                          "out-of-core")
    srv.add_argument("--concurrency", type=int, default=1,
                     help="simulated workers computing at once")
    srv.add_argument("--max-queue-ms", type=float, default=None,
                     help="admission control: cap on the predicted "
                          "simulated-ms backlog in the queue")
    srv.add_argument("--max-queue-depth", type=int, default=None,
                     help="admission control: cap on queued requests")
    srv.add_argument("--tenant-quota-ms", type=float, default=None,
                     help="per-tenant cap on outstanding predicted ms")
    srv.add_argument("--tenants", type=int, default=1,
                     help="spread requests round-robin over N "
                          "synthetic tenants")
    srv.add_argument("--lanes", type=int, default=2,
                     help="number of strict-priority lanes")
    srv.add_argument("--window-ms", type=float, default=None,
                     help="spread arrivals uniformly over this "
                          "simulated window and run the async "
                          "scheduler (default: sequential submits)")
    srv.add_argument("--mutation-rate", type=int, default=None,
                     help="insert a random edge batch into the "
                          "requested dataset every N requests "
                          "(delta-served repeats; sequential mode only)")
    srv.add_argument("--mutation-batch", type=int, default=64,
                     help="edges per insertion batch "
                          "(with --mutation-rate)")
    srv.add_argument("--feedback", default=True,
                     action=argparse.BooleanOptionalAction,
                     help="feed measured run costs back into routing "
                          "(--no-feedback replays the static planner)")
    srv.add_argument("--explore-margin", type=float, default=1.25,
                     help="corrected-margin threshold below which a "
                          "routing decision counts as near-margin and "
                          "may explore the runner-up")
    srv.add_argument("--explore-rate", type=float, default=0.0,
                     help="epsilon of the seeded exploration policy "
                          "(0 never explores)")
    srv.add_argument("--explore-seed", type=int, default=0,
                     help="seed of the deterministic exploration "
                          "stream")

    rep = sub.add_parser("report",
                         help="regenerate all artifacts into markdown")
    rep.add_argument("--out", default="report.md")
    rep.add_argument("--scale", type=float, default=1.0)
    rep.add_argument("--machine", default="SkylakeX",
                     choices=sorted(MACHINES))

    tri = sub.add_parser("trials",
                         help="verified multi-trial measurement")
    tri.add_argument("input", help="dataset name or edge-list path")
    tri.add_argument("--method", default="thrifty",
                     choices=sorted(ALGORITHMS))
    tri.add_argument("--machine", default="SkylakeX",
                     choices=sorted(MACHINES))
    tri.add_argument("--trials", type=int, default=5)
    tri.add_argument("--scale", type=float, default=1.0)
    tri.add_argument("--opt", action="append", metavar="KEY=VALUE",
                     help="typed algorithm option (repeatable)")
    return p


def _cmd_run(args) -> int:
    graph = load(args.input, args.scale)
    name = args.input
    machine = MACHINES[args.machine]
    options = _options_from_args(args)
    result = connected_components(graph, args.method, machine=machine,
                                  dataset=name, options=options)
    timing = simulate_run_time(result.trace, machine, graph.num_vertices)
    c = result.counters()
    print(f"dataset            : {name}  (|V|={graph.num_vertices}, "
          f"|E|={graph.num_undirected_edges})")
    print(f"algorithm          : {result.algorithm}")
    print(f"components         : {result.num_components}")
    print(f"iterations         : {result.num_iterations}")
    print(f"edges processed    : {c.edges_processed} "
          f"({100 * c.edges_processed / max(graph.num_edges, 1):.2f}% of |E|)")
    print(f"simulated time     : {timing.total_ms:.3f} ms on {machine.name}")
    comm = result.extras.get("comm")
    if comm is not None:
        from .distributed import simulate_distributed_time
        dist_ms = simulate_distributed_time(result, graph.num_vertices,
                                            node=machine)
        print(f"ranks              : {result.extras['num_ranks']} "
              f"({result.extras['partition']} partition, "
              f"edge cut {result.extras['edge_cut']})")
        print(f"communication      : {comm.supersteps} supersteps, "
              f"{comm.messages} messages, {comm.updates} updates, "
              f"{comm.modeled_bytes} modeled bytes")
        print(f"distributed time   : {dist_ms:.3f} ms "
              f"({machine.name} nodes, 25GbE)")
    io = result.extras.get("io")
    if io is not None:
        print(f"io                 : {io['blocks_read']} blocks read "
              f"({io['blocks_reread']} reread), {io['bytes_read']} bytes, "
              f"modeled {io['modeled_ms']:.3f} ms on {io['disk']}")
    if args.trace:
        print()
        rows = [[rec.index, rec.direction.value, f"{rec.density:.4f}",
                 rec.active_vertices, rec.changed_vertices,
                 f"{100 * rec.converged_fraction:.1f}",
                 f"{ms:.4f}"]
                for rec, ms in zip(result.trace.iterations,
                                   timing.per_iteration_ms)]
        print(format_table(
            ["iter", "direction", "density", "active", "changed",
             "converged %", "sim ms"], rows))
    return 0


def _cmd_datasets(_args) -> int:
    rows = []
    for spec in DATASETS.values():
        rows.append([spec.name, spec.kind,
                     "yes" if spec.power_law else "no",
                     spec.paper_vertices_m, spec.paper_edges_b,
                     spec.paper_cc])
    print(format_table(
        ["name", "kind", "power-law", "paper |V| (M)", "paper |E| (B)",
         "paper |CC|"], rows))
    return 0


def _cmd_generate(args) -> int:
    graph = load(args.dataset, args.scale)
    if args.output.endswith(".npz"):
        save_csr_npz(graph, args.output)
    else:
        save_edge_list_text(graph.to_edge_list(), args.output,
                            header=f"surrogate for {args.dataset}")
    print(f"wrote {args.output}: |V|={graph.num_vertices}, "
          f"|E|={graph.num_undirected_edges}")
    return 0


def _cmd_pack(args) -> int:
    from .storage import DEFAULT_EDGES_PER_BLOCK, read_header, write_blocked

    graph = load(args.input, args.scale)
    epb = args.edges_per_block or DEFAULT_EDGES_PER_BLOCK
    write_blocked(graph, args.output, edges_per_block=epb)
    header = read_header(args.output)
    print(f"wrote {args.output}: |V|={header.num_vertices}, "
          f"|E|={header.num_edges}, {header.num_blocks} blocks x "
          f"{header.edges_per_block} edges ({header.index_dtype}, "
          f"{header.file_size} bytes)")
    return 0


def _serve_mutating(service, args, request_cls) -> list:
    """Sequential request stream with interleaved edge insertions.

    Datasets are registered once by name and requested by key, so each
    mutation's successor graph (same name, new fingerprint) is what
    subsequent requests resolve — the delta-serving path end to end.
    """
    import numpy as np

    sizes = {}
    for name in args.datasets:
        graph = load(name, args.scale)
        service.register(graph, name=name)
        sizes[name] = graph.num_vertices
    rng = np.random.default_rng(0)
    responses = []
    for _ in range(args.repeats):
        for name in args.datasets:
            if responses and len(responses) % args.mutation_rate == 0:
                n = sizes[name]
                service.mutate(name, insert=(
                    rng.integers(0, n, args.mutation_batch),
                    rng.integers(0, n, args.mutation_batch)))
            tenant = f"tenant-{len(responses) % max(args.tenants, 1)}"
            responses.append(service.submit(
                request_cls(key=name, name=name, method=args.method,
                            budget_ms=args.budget_ms, tenant=tenant)))
    return responses


def _cmd_serve(args) -> int:
    from .options import ServiceOptions
    from .service import CCRequest, CCService

    try:
        service_options = ServiceOptions(
            concurrency=args.concurrency,
            max_queue_ms=args.max_queue_ms,
            max_queue_depth=args.max_queue_depth,
            tenant_quota_ms=args.tenant_quota_ms,
            num_lanes=args.lanes,
            feedback=args.feedback,
            explore_margin=args.explore_margin,
            explore_rate=args.explore_rate,
            explore_seed=args.explore_seed)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    service = CCService(machine=MACHINES[args.machine],
                        cache_capacity=args.cache_size,
                        single_node_edge_budget=args.edge_budget,
                        resident_byte_budget=args.resident_budget,
                        service_options=service_options)
    for name in args.datasets:
        if name not in DATASETS:
            raise SystemExit(f"unknown dataset {name!r}; see "
                             f"`repro datasets`")
    if args.mutation_rate is not None:
        if args.window_ms is not None:
            raise SystemExit("--mutation-rate interleaves mutations "
                             "with sequential submits; it cannot be "
                             "combined with --window-ms")
        if args.mutation_rate < 1:
            raise SystemExit("--mutation-rate must be >= 1")
        responses = _serve_mutating(service, args, CCRequest)
    else:
        requests = []
        for _ in range(args.repeats):
            for name in args.datasets:
                tenant = f"tenant-{len(requests) % max(args.tenants, 1)}"
                requests.append(
                    CCRequest(graph=load(name, args.scale),
                              name=name, method=args.method,
                              budget_ms=args.budget_ms, tenant=tenant))
        if args.window_ms is not None:
            # Timestamped trace through the async scheduler: uniform
            # arrivals over the window, coalescing/admission active.
            step = args.window_ms / max(len(requests) - 1, 1)
            for i, req in enumerate(requests):
                req.arrival_ms = i * step
            responses = service.run_trace(requests)
        else:
            responses = service.submit_batch(requests)
    rows = []
    for resp in responses:
        if resp.status == "rejected":
            rows.append([resp.request.name, resp.method,
                         f"rejected:{resp.reject_reason}", "no", "-",
                         "-"])
            continue
        cache = "hit" if resp.cache_hit else (
            "coalesced" if resp.coalesced else
            "delta" if resp.delta_hit else "miss")
        rows.append([resp.request.name, resp.method, cache,
                     "yes" if resp.fallback else "no",
                     resp.num_components,
                     f"{resp.simulated_ms:.3f}"])
    print(format_table(
        ["dataset", "method", "cache", "fallback", "components",
         "sim ms"], rows))
    snap = service.metrics.snapshot()
    print(f"\nrequests={snap['requests']} hit_rate={snap['hit_rate']:.2f} "
          f"effective_hit_rate={snap['effective_hit_rate']:.2f} "
          f"fallbacks={snap['fallbacks']} "
          f"auto_routed={snap['auto_routed']}")
    print(f"coalesced={snap['coalesced']} delta_hits={snap['delta_hits']} "
          f"invalidations={snap['invalidations']} "
          f"rejected={snap['rejected']} "
          f"flag_replays={snap['flag_replays']}")
    print(f"predictions={snap['predictions']} "
          f"mispredictions={snap['mispredictions']} "
          f"route_flips={snap['route_flips']} "
          f"explorations={snap['explorations']}")
    print("per-method counts:", snap["per_method"])
    if snap["fallback_per_method"]:
        print("fallback runs by method:", snap["fallback_per_method"])
    if args.tenants > 1:
        print("per-tenant counts:", snap["per_tenant"])
    lat = snap["latency"]
    print(f"simulated latency: mean={lat['mean_ms']:.3f}ms "
          f"p50={lat['p50_ms']:.3f}ms p99={lat['p99_ms']:.3f}ms")
    qd = snap["queue_delay"]
    if qd["count"]:
        print(f"queue delay: mean={qd['mean_ms']:.3f}ms "
              f"p50={qd['p50_ms']:.3f}ms p99={qd['p99_ms']:.3f}ms")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "datasets":
        return _cmd_datasets(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "pack":
        return _cmd_pack(args)
    if args.command == "experiment":
        _EXPERIMENTS[args.id](args)
        return 0
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "trials":
        from .experiments.protocol import run_trials
        graph = load(args.input, args.scale)
        stats = run_trials(graph, args.method, num_trials=args.trials,
                           machine=args.machine,
                           options=_options_from_args(args))
        print(f"{args.method} on {args.input}: {stats.num_trials} "
              f"verified trials on {stats.machine}")
        print(f"  simulated ms: mean={stats.mean_ms:.3f} "
              f"min={stats.min_ms:.3f} max={stats.max_ms:.3f} "
              f"stdev={stats.stdev_ms:.4f}")
        print(f"  iterations  : {stats.iterations}")
        return 0
    if args.command == "report":
        from .experiments.report import generate_report
        text = generate_report(scale=args.scale, machine=args.machine)
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out} ({len(text)} chars)")
        return 0
    return 1  # pragma: no cover


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())

"""Per-experiment drivers — one function per paper table/figure.

Each function returns plain data (list of dict rows or series) that the
benchmark harness prints with :func:`repro.experiments.tables.format_table`
and that EXPERIMENTS.md quotes.  See DESIGN.md Section 4 for the
experiment index.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..graph import load
from ..graph.datasets import (
    ALL_DATASET_NAMES,
    DATASETS,
    POWER_LAW_DATASET_NAMES,
)
from ..graph.properties import max_degree_component_fraction
from ..instrument.costmodel import CostModel
from ..options import ThriftyOptions
from ..parallel.machine import MACHINES
from .runner import timed_run

__all__ = [
    "fig1_speedup_summary",
    "table1_giant_component",
    "table4_execution_times",
    "table5_iterations",
    "fig3_dolp_convergence",
    "fig5_work_reduction",
    "fig6_hw_counters",
    "fig7_8_convergence_comparison",
    "table6_initial_push",
    "table7_threshold",
    "fig9_10_ablation",
]

_BASELINES = ("sv", "bfs", "dolp", "jt", "afforest")


def _geomean(xs: Sequence[float]) -> float:
    xs = [x for x in xs if x > 0]
    if not xs:
        return 0.0
    return float(math.exp(sum(math.log(x) for x in xs) / len(xs)))


# ---------------------------------------------------------------- Figure 1

def fig1_speedup_summary(machine: str = "SkylakeX",
                         datasets: Sequence[str] = POWER_LAW_DATASET_NAMES,
                         scale: float = 1.0) -> dict[str, float]:
    """Geo-mean speedup of Thrifty over each algorithm (power-law sets).

    Paper (both machines pooled): Afforest 1.4x, JT 7.3x, BFS-CC 14.7x,
    SV 51.2x, DO-LP 25.2x.
    """
    out: dict[str, float] = {}
    thrifty = {d: timed_run(d, "thrifty", machine, scale=scale).total_ms
               for d in datasets}
    for method in _BASELINES:
        ratios = [timed_run(d, method, machine, scale=scale).total_ms
                  / thrifty[d] for d in datasets]
        out[method] = _geomean(ratios)
    return out


# ----------------------------------------------------------------- Table I

def table1_giant_component(datasets: Sequence[str] = POWER_LAW_DATASET_NAMES,
                           scale: float = 1.0) -> list[dict]:
    """% vertices in the component of the max-degree vertex.

    Paper: 94.5%-100% on all 15 power-law datasets.
    """
    rows = []
    for name in datasets:
        g = load(name, scale)
        rows.append({
            "dataset": name,
            "vertices_pct": 100.0 * max_degree_component_fraction(g),
        })
    return rows


# ---------------------------------------------------------------- Table IV

def table4_execution_times(machines: Sequence[str] = ("SkylakeX", "Epyc"),
                           datasets: Sequence[str] = ALL_DATASET_NAMES,
                           methods: Sequence[str] = (*_BASELINES, "thrifty"),
                           scale: float = 1.0) -> list[dict]:
    """Simulated execution times (ms) for every dataset/algorithm/machine."""
    rows = []
    for name in datasets:
        row: dict = {"dataset": name,
                     "power_law": DATASETS[name].power_law}
        for machine in machines:
            for method in methods:
                run = timed_run(name, method, machine, scale=scale)
                row[f"{machine}/{method}"] = run.total_ms
        rows.append(row)
    return rows


# ----------------------------------------------------------------- Table V

def table5_iterations(datasets: Sequence[str] = POWER_LAW_DATASET_NAMES,
                      machine: str = "SkylakeX",
                      scale: float = 1.0) -> list[dict]:
    """Iteration counts: DO-LP vs Thrifty and their ratio.

    Paper: ratio 0.11-0.94, average 0.61 (39% reduction).
    """
    rows = []
    for name in datasets:
        dolp = timed_run(name, "dolp", machine, scale=scale)
        thrifty = timed_run(name, "thrifty", machine, scale=scale)
        rows.append({
            "dataset": name,
            "dolp": dolp.num_iterations,
            "thrifty": thrifty.num_iterations,
            "ratio": thrifty.num_iterations / max(dolp.num_iterations, 1),
        })
    return rows


# ---------------------------------------------------------------- Figure 3

def fig3_dolp_convergence(dataset: str = "Twtr",
                          machine: str = "SkylakeX",
                          scale: float = 1.0) -> list[dict]:
    """DO-LP per-iteration active% and converged% (Figure 3 series)."""
    run = timed_run(dataset, "dolp", machine, scale=scale)
    n = run.graph.num_vertices
    rows = []
    for rec in run.result.trace.iterations:
        rows.append({
            "iteration": rec.index,
            "direction": rec.direction.value,
            "active_pct": 100.0 * rec.active_vertices / n,
            "converged_pct": 100.0 * rec.converged_fraction,
        })
    return rows


# ---------------------------------------------------------------- Figure 5

def fig5_work_reduction(datasets: Sequence[str] = POWER_LAW_DATASET_NAMES,
                        machine: str = "SkylakeX",
                        scale: float = 1.0) -> list[dict]:
    """Thrifty vs DO-LP: speedup and % of |E| processed by each.

    Paper: Thrifty processes <= 4.4% of edges (1.4% average); DO-LP
    processes each edge 7.7x on average; >= 97% work reduction.
    """
    rows = []
    for name in datasets:
        dolp = timed_run(name, "dolp", machine, scale=scale)
        thrifty = timed_run(name, "thrifty", machine, scale=scale)
        rows.append({
            "dataset": name,
            "speedup": dolp.total_ms / thrifty.total_ms,
            "thrifty_edges_pct": 100.0 * thrifty.edges_fraction,
            "dolp_edges_x": dolp.edges_fraction,   # times each edge seen
            "work_reduction_pct": 100.0 * (1.0 - thrifty.edges_processed
                                           / max(dolp.edges_processed, 1)),
        })
    return rows


# ---------------------------------------------------------------- Figure 6

def fig6_hw_counters(datasets: Sequence[str] = POWER_LAW_DATASET_NAMES,
                     machine: str = "SkylakeX",
                     scale: float = 1.0) -> list[dict]:
    """Reduction (%) in modelled hardware events, Thrifty vs DO-LP.

    Paper: Thrifty cuts >= 80% of LLC misses, memory accesses, branch
    mispredictions and instructions.
    """
    rows = []
    for name in datasets:
        dolp = timed_run(name, "dolp", machine, scale=scale).hardware()
        thrifty = timed_run(name, "thrifty", machine, scale=scale).hardware()
        row = {"dataset": name}
        for event, d_val in dolp.as_dict().items():
            t_val = thrifty.as_dict()[event]
            row[f"{event}_reduction_pct"] = \
                100.0 * (1.0 - t_val / max(d_val, 1))
        rows.append(row)
    return rows


# ------------------------------------------------------------ Figures 7, 8

def fig7_8_convergence_comparison(dataset: str = "Twtr",
                                  machine: str = "SkylakeX",
                                  scale: float = 1.0) -> dict[str, list[float]]:
    """Converged% after each iteration, DO-LP vs Thrifty.

    Paper: DO-LP reaches only 34.8% after four pull iterations;
    Thrifty reaches 88.3% after its first pull iteration.
    """
    dolp = timed_run(dataset, "dolp", machine, scale=scale)
    thrifty = timed_run(dataset, "thrifty", machine, scale=scale)
    return {
        "dolp": [100.0 * f for f in dolp.result.trace.convergence_curve()],
        "thrifty": [100.0 * f
                    for f in thrifty.result.trace.convergence_curve()],
    }


# ---------------------------------------------------------------- Table VI

def table6_initial_push(datasets: Sequence[str] = POWER_LAW_DATASET_NAMES,
                        machine: str = "SkylakeX",
                        scale: float = 1.0) -> list[dict]:
    """First-iteration cost: DO-LP's pull vs Thrifty's initial push +
    first zero-convergence pull.

    Paper: speedup 1.9x-14.2x, average 5.3x.
    """
    spec = MACHINES[machine]
    rows = []
    for name in datasets:
        dolp = timed_run(name, "dolp", machine, scale=scale)
        thrifty = timed_run(name, "thrifty", machine, scale=scale)
        cm = CostModel(spec, dolp.graph.num_vertices)
        dolp_it0 = cm.iteration_ms(dolp.result.trace.iterations[0].counters)
        t_recs = thrifty.result.trace.iterations
        push_ms = cm.iteration_ms(t_recs[0].counters)
        pull_ms = (cm.iteration_ms(t_recs[1].counters)
                   if len(t_recs) > 1 else 0.0)
        rows.append({
            "dataset": name,
            "dolp_iter0_ms": dolp_it0,
            "thrifty_push_ms": push_ms,
            "thrifty_pull_ms": pull_ms,
            "speedup": dolp_it0 / max(push_ms + pull_ms, 1e-12),
        })
    return rows


# --------------------------------------------------------------- Table VII

def table7_threshold(dataset: str = "TwtrMpi",
                     machine: str = "SkylakeX",
                     thresholds: Sequence[float] = (0.01, 0.05),
                     scale: float = 1.0) -> dict[float, list[dict]]:
    """Per-iteration traversal/density/time at different thresholds.

    Paper (Table VII, Twitter-MPI): at 1% iterations 2-3 stay pull and
    a Pull-Frontier precedes the pushes; at 5% the switch happens one
    iteration earlier and overall time is slightly worse.
    """
    spec = MACHINES[machine]
    out: dict[float, list[dict]] = {}
    for threshold in thresholds:
        run = timed_run(dataset, "thrifty", machine, scale=scale,
                        options=ThriftyOptions(threshold=threshold))
        cm = CostModel(spec, run.graph.num_vertices)
        rows = []
        for rec in run.result.trace.iterations:
            rows.append({
                "iteration": rec.index,
                "traversal": rec.direction.value,
                "density_pct": 100.0 * rec.density,
                "time_ms": cm.iteration_ms(rec.counters),
            })
        out[threshold] = rows
    return out


# ------------------------------------------------------------ Figures 9, 10

def fig9_10_ablation(datasets: Sequence[str] = POWER_LAW_DATASET_NAMES,
                     machine: str = "SkylakeX",
                     scale: float = 1.0) -> list[dict]:
    """Improvement split: Unified Labels vs the zero-based techniques.

    Runs DO-LP, DO-LP+unified, and full Thrifty; reports each variant's
    time and the share of the total improvement attributable to the
    Unified Labels Array (paper: ~65%) vs Zero Convergence + Zero
    Planting + Initial Push (~35%).
    """
    rows = []
    for name in datasets:
        dolp = timed_run(name, "dolp", machine, scale=scale).total_ms
        unified = timed_run(name, "unified", machine, scale=scale).total_ms
        thrifty = timed_run(name, "thrifty", machine, scale=scale).total_ms
        total_gain = dolp - thrifty
        unified_share = ((dolp - unified) / total_gain
                         if total_gain > 0 else float("nan"))
        rows.append({
            "dataset": name,
            "dolp_ms": dolp,
            "unified_ms": unified,
            "thrifty_ms": thrifty,
            "unified_share_pct": 100.0 * unified_share,
        })
    return rows

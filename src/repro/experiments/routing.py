"""Auto-routing evaluation: planner decisions vs measured winners.

The serving layer's ``method="auto"`` claims to reproduce Table IV's
LP-vs-union-find crossover from structural probes alone.  This driver
makes that claim auditable: for every dataset surrogate it reports the
probes, the planner's predicted family costs and decision, the
*measured* best family (Thrifty vs the best of SV/JT/Afforest, from
:func:`timed_run`), and whether they agree.
"""

from __future__ import annotations

from typing import Sequence

from ..graph.datasets import ALL_DATASET_NAMES, load_dataset
from ..parallel.machine import MACHINES
from ..service import plan
from ..service.registry import probe_graph
from .runner import timed_run

__all__ = ["auto_routing_table", "UF_BASELINES"]

#: Union-find measured comparators: the best of these defines the
#: "UF family" time a routing decision is judged against.
UF_BASELINES = ("sv", "jt", "afforest")


def auto_routing_table(machine: str = "SkylakeX",
                       scale: float = 1.0,
                       datasets: Sequence[str] = ALL_DATASET_NAMES,
                       ) -> list[dict]:
    """One row per dataset: probes, prediction, measurement, agreement."""
    spec = MACHINES[machine]
    rows = []
    for name in datasets:
        lp_ms = timed_run(name, "thrifty", machine, scale=scale).total_ms
        uf_ms = min(timed_run(name, m, machine, scale=scale).total_ms
                    for m in UF_BASELINES)
        measured = "lp" if lp_ms <= uf_ms else "uf"
        probes = probe_graph(load_dataset(name, scale))
        decision = plan(probes, spec)
        rows.append({
            "dataset": name,
            "diameter": probes.diameter,
            "giant_pct": 100.0 * probes.giant_fraction,
            "skew": probes.skew_ratio,
            "pred_lp_ms": decision.predicted_lp_ms,
            "pred_uf_ms": decision.predicted_uf_ms,
            "routed": decision.method,
            "measured_lp_ms": lp_ms,
            "measured_uf_ms": uf_ms,
            "measured_winner": measured,
            "agree": decision.family == measured,
        })
    return rows

"""Auto-routing evaluation: planner decisions vs measured winners.

The serving layer's ``method="auto"`` claims to reproduce Table IV's
LP-vs-union-find crossover from structural probes alone.  This driver
makes that claim auditable: for every dataset surrogate it reports the
probes, the planner's predicted family costs and decision, the
*measured* best family (Thrifty vs the best of SV/JT/Afforest, from
:func:`timed_run`), and whether they agree.

:func:`routing_regret_table` evaluates the *feedback* router the same
way: it deliberately poisons each dataset's probes (the diameter is
underestimated, which makes LP look cheap) and replays a repeat
workload three ways — static routing on the poisoned plan, feedback
routing (measured costs folded into a :class:`RouterFeedback`
posterior after every run), and the measured-winner oracle — reporting
each policy's total simulated-ms and its regret over the oracle.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..graph import load
from ..graph.datasets import ALL_DATASET_NAMES
from ..parallel.machine import MACHINES
from ..service import RouterFeedback, plan, replan
from ..service.registry import probe_graph
from .runner import timed_run

__all__ = ["auto_routing_table", "routing_regret_table", "UF_BASELINES"]

#: Union-find measured comparators: the best of these defines the
#: "UF family" time a routing decision is judged against.
UF_BASELINES = ("sv", "jt", "afforest")


def auto_routing_table(machine: str = "SkylakeX",
                       scale: float = 1.0,
                       datasets: Sequence[str] = ALL_DATASET_NAMES,
                       resident_byte_budget: int | None = None,
                       ) -> list[dict]:
    """One row per dataset: probes, prediction, measurement, agreement.

    ``resident_byte_budget`` exercises the planner's out-of-core
    cliff: datasets whose edge array exceeds it show
    ``storage="out_of_core"`` (and route to label propagation by fit,
    not by cost race).
    """
    spec = MACHINES[machine]
    rows = []
    for name in datasets:
        lp_ms = timed_run(name, "thrifty", machine, scale=scale).total_ms
        uf_ms = min(timed_run(name, m, machine, scale=scale).total_ms
                    for m in UF_BASELINES)
        measured = "lp" if lp_ms <= uf_ms else "uf"
        probes = probe_graph(load(name, scale))
        decision = plan(probes, spec,
                        resident_byte_budget=resident_byte_budget)
        rows.append({
            "dataset": name,
            "diameter": probes.diameter,
            "giant_pct": 100.0 * probes.giant_fraction,
            "skew": probes.skew_ratio,
            "pred_lp_ms": decision.predicted_lp_ms,
            "pred_uf_ms": decision.predicted_uf_ms,
            "routed": decision.method,
            "storage": decision.storage,
            "measured_lp_ms": lp_ms,
            "measured_uf_ms": uf_ms,
            "measured_winner": measured,
            "agree": decision.family == measured,
        })
    return rows


def routing_regret_table(machine: str = "SkylakeX",
                         scale: float = 1.0,
                         repeats: int = 8,
                         diameter_scale: float = 0.25,
                         datasets: Sequence[str] | None = None,
                         ) -> list[dict]:
    """Regret of static vs feedback routing under poisoned probes.

    Every dataset's probed diameter is scaled down by
    ``diameter_scale`` before planning — the exact misprediction shape
    that hurts the static model most (an underestimated diameter makes
    LP's wavefront look short, so road-network graphs route to Thrifty,
    the measured loser).  The workload is ``repeats`` identical
    requests per dataset with caching out of the picture: the static
    policy pays its (possibly wrong) route every time, while the
    feedback policy folds each run's measured cost into a
    :class:`RouterFeedback` posterior and re-decides via
    :func:`replan` — observations always against the uncorrected
    static prediction, exactly as the executor feeds it.  ``regret``
    columns are each policy's total simulated-ms over the
    measured-winner oracle; ``converged_in`` counts the runs the
    feedback policy needed before it first routed the measured winner.
    """
    spec = MACHINES[machine]
    rows = []
    for name in (datasets if datasets is not None else ALL_DATASET_NAMES):
        lp_ms = timed_run(name, "thrifty", machine, scale=scale).total_ms
        uf_ms = min(timed_run(name, m, machine, scale=scale).total_ms
                    for m in UF_BASELINES)
        measured = {"lp": lp_ms, "uf": uf_ms}
        winner = "lp" if lp_ms <= uf_ms else "uf"
        probes = probe_graph(load(name, scale))
        poisoned = replace(
            probes, diameter=max(1, int(probes.diameter * diameter_scale)))
        base = plan(poisoned, spec)
        static_ms = repeats * measured[base.family]
        oracle_ms = repeats * measured[winner]
        feedback = RouterFeedback()
        feedback_ms = 0.0
        converged_in = repeats
        for t in range(repeats):
            route = replan(base, feedback, name)
            if route.family == winner and converged_in == repeats:
                converged_in = t
            feedback_ms += measured[route.family]
            predicted = (base.predicted_lp_ms if route.family == "lp"
                         else base.predicted_uf_ms)
            feedback.observe(name, route.method, predicted,
                             measured[route.family], machine=spec.name)
        rows.append({
            "dataset": name,
            "poisoned_route": base.method,
            "storage": base.storage,
            "measured_winner": winner,
            "static_ms": static_ms,
            "feedback_ms": feedback_ms,
            "oracle_ms": oracle_ms,
            "static_regret_ms": static_ms - oracle_ms,
            "feedback_regret_ms": feedback_ms - oracle_ms,
            "converged_in": converged_in,
        })
    return rows

"""Plain-text table formatting for the experiment harness."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_float"]


def format_float(x: float, digits: int = 2) -> str:
    """Compact float: integers lose the decimal point."""
    if x == int(x) and abs(x) < 1e15:
        return str(int(x))
    return f"{x:.{digits}f}"


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 *, title: str | None = None,
                 float_digits: int = 2) -> str:
    """Render an aligned monospace table."""
    def cell(x: Any) -> str:
        if isinstance(x, float):
            return format_float(x, float_digits)
        return str(x)

    str_rows = [[cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)

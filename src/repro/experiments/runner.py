"""Shared experiment driver: run-and-time any algorithm on any dataset.

All benchmark targets call through :func:`timed_run`, which memoizes
(dataset, method, machine, scale, options) so a full
`pytest benchmarks/` pass runs each configuration once.  Options are
frozen dataclasses, so configured runs memoize just like default ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api import connected_components
from ..core.result import CCResult
from ..graph.csr import CSRGraph
from ..graph import load
from ..instrument.costmodel import TimedRun, simulate_run_time
from ..instrument.papi import HardwareProxy, model_hardware_counters
from ..parallel.machine import MACHINES, MachineSpec

__all__ = ["ExperimentRun", "timed_run", "clear_cache"]


@dataclass(frozen=True)
class ExperimentRun:
    """One (dataset, algorithm, machine) execution with all metrics."""

    dataset: str
    method: str
    machine: str
    graph: CSRGraph
    result: CCResult
    timing: TimedRun

    @property
    def total_ms(self) -> float:
        return self.timing.total_ms

    @property
    def num_iterations(self) -> int:
        return self.result.num_iterations

    @property
    def edges_processed(self) -> int:
        return self.result.counters().edges_processed

    @property
    def edges_fraction(self) -> float:
        """Fraction of |E| (directed) the run processed."""
        m = self.graph.num_edges
        return self.edges_processed / m if m else 0.0

    def hardware(self) -> HardwareProxy:
        return model_hardware_counters(self.result.counters(),
                                       MACHINES[self.machine],
                                       self.graph.num_vertices)


_CACHE: dict[tuple, ExperimentRun] = {}


def clear_cache() -> None:
    """Drop memoized runs (tests use this for isolation)."""
    _CACHE.clear()


def timed_run(dataset: str, method: str,
              machine: MachineSpec | str = "SkylakeX",
              *, scale: float = 1.0,
              options: object = None) -> ExperimentRun:
    """Run (memoized) and cost-model one configuration.

    ``options`` is a typed per-algorithm dataclass (see
    :mod:`repro.options`); being frozen and hashable, it participates
    in the memoization key, so configured runs are cached exactly like
    default-configuration ones.
    """
    spec = MACHINES[machine] if isinstance(machine, str) else machine
    key = (dataset, method, spec.name, scale, options)
    if key in _CACHE:
        return _CACHE[key]
    graph = load(dataset, scale)
    result = connected_components(graph, method, machine=spec,
                                  dataset=dataset, options=options)
    timing = simulate_run_time(result.trace, spec, graph.num_vertices)
    run = ExperimentRun(dataset=dataset, method=method, machine=spec.name,
                        graph=graph, result=result, timing=timing)
    _CACHE[key] = run
    return run

"""One-shot report generator: every paper artifact into one markdown.

``repro report [--scale S] [--out PATH]`` (or
:func:`generate_report`) runs all experiment drivers and renders the
tables/series into a single markdown document — the quick way to
regenerate an EXPERIMENTS.md-style record after changing the model.
"""

from __future__ import annotations

import io
import time

from . import paper
from .routing import auto_routing_table

__all__ = ["generate_report"]


def _rows_to_md(rows: list[dict], digits: int = 2) -> str:
    if not rows:
        return "(no rows)\n"
    headers = list(rows[0].keys())
    out = ["| " + " | ".join(headers) + " |",
           "|" + "---|" * len(headers)]
    for r in rows:
        cells = []
        for h in headers:
            v = r[h]
            cells.append(f"{v:.{digits}f}" if isinstance(v, float)
                         else str(v))
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out) + "\n"


def generate_report(scale: float = 1.0,
                    machine: str = "SkylakeX") -> str:
    """Run every paper-artifact driver; return the markdown report."""
    buf = io.StringIO()
    w = buf.write
    start = time.time()
    w("# Thrifty reproduction report\n\n")
    w(f"surrogate scale: {scale}, machine: {machine}\n\n")

    w("## Figure 1 — geo-mean speedups\n\n")
    out = paper.fig1_speedup_summary(machine, scale=scale)
    w(_rows_to_md([{"vs": k, "speedup_x": v} for k, v in out.items()]))

    w("\n## Table I — giant-component share\n\n")
    w(_rows_to_md(paper.table1_giant_component(scale=scale)))

    w("\n## Table IV — execution times (simulated ms)\n\n")
    w(_rows_to_md(paper.table4_execution_times(machines=(machine,),
                                               scale=scale)))

    w("\n## Table V — iterations\n\n")
    w(_rows_to_md(paper.table5_iterations(machine=machine,
                                          scale=scale)))

    w("\n## Figure 3 — DO-LP convergence (Twtr)\n\n")
    w(_rows_to_md(paper.fig3_dolp_convergence(machine=machine,
                                              scale=scale), digits=1))

    w("\n## Figure 5 — work reduction\n\n")
    w(_rows_to_md(paper.fig5_work_reduction(machine=machine,
                                            scale=scale)))

    w("\n## Figure 6 — hardware-event reduction (modelled)\n\n")
    w(_rows_to_md(paper.fig6_hw_counters(machine=machine,
                                         scale=scale), digits=1))

    w("\n## Figures 7/8 — convergence curves (Twtr)\n\n")
    curves = paper.fig7_8_convergence_comparison(machine=machine,
                                                 scale=scale)
    for name, series in curves.items():
        pts = " ".join(f"{x:.1f}" for x in series)
        w(f"- **{name}** converged%: {pts}\n")

    w("\n## Table VI — first-iteration cost\n\n")
    w(_rows_to_md(paper.table6_initial_push(machine=machine,
                                            scale=scale), digits=3))

    w("\n## Table VII — threshold effect (TwtrMpi)\n\n")
    for threshold, rows in paper.table7_threshold(
            machine=machine, scale=scale).items():
        w(f"\n### threshold = {100 * threshold:g}%\n\n")
        w(_rows_to_md(rows, digits=3))

    w("\n## Figures 9/10 — ablation\n\n")
    w(_rows_to_md(paper.fig9_10_ablation(machine=machine,
                                         scale=scale)))

    w("\n## Auto-routing — planner vs measured winners\n\n")
    routing = auto_routing_table(machine=machine, scale=scale)
    w(_rows_to_md(routing))
    agree = sum(r["agree"] for r in routing)
    w(f"\nplanner agreement: {agree}/{len(routing)} datasets\n")

    w(f"\n---\ngenerated in {time.time() - start:.1f}s\n")
    return buf.getvalue()

"""Trial protocol: repeated, verified measurement runs.

Follows the GAP Benchmark Suite discipline the paper's comparators use
(GAPBS runs each kernel over multiple trials and verifies every
output): each trial runs the algorithm, validates the components
against the scipy oracle, and records the simulated time; the
aggregate reports mean/min/max and the full per-trial list.

Seeded algorithms (JT, Afforest, ConnectIt samplers) get a distinct
seed per trial, so the statistics cover their randomization; the
deterministic algorithms simply confirm reproducibility (zero
variance).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field, fields, replace

from ..api import connected_components
from ..graph.csr import CSRGraph
from ..instrument.costmodel import simulate_run_time
from ..options import resolve_options
from ..parallel.machine import MACHINES, MachineSpec
from ..validate import validate_against_reference

__all__ = ["TrialStats", "run_trials"]


@dataclass
class TrialStats:
    """Aggregate of a verified multi-trial measurement."""

    method: str
    machine: str
    trials: list[float] = field(default_factory=list)
    iterations: list[int] = field(default_factory=list)
    verified: bool = False

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    @property
    def mean_ms(self) -> float:
        return statistics.mean(self.trials) if self.trials else 0.0

    @property
    def min_ms(self) -> float:
        return min(self.trials) if self.trials else 0.0

    @property
    def max_ms(self) -> float:
        return max(self.trials) if self.trials else 0.0

    @property
    def stdev_ms(self) -> float:
        return statistics.stdev(self.trials) if len(self.trials) > 1 \
            else 0.0


def run_trials(graph: CSRGraph, method: str,
               *, num_trials: int = 5,
               machine: MachineSpec | str = "SkylakeX",
               verify: bool = True,
               seed_base: int = 0,
               options: object = None) -> TrialStats:
    """Run ``num_trials`` verified trials of one algorithm.

    Raises if any trial produces wrong components (when ``verify``).
    When ``options`` is omitted, algorithms with a ``seed`` field get
    ``seed_base + trial`` so the statistics cover their randomization;
    explicit ``options`` are used verbatim on every trial (a
    reproducibility measurement).
    """
    if num_trials < 1:
        raise ValueError("num_trials must be >= 1")
    spec = MACHINES[machine] if isinstance(machine, str) else machine
    vary_seed = options is None
    base_options = resolve_options(method, options, {})
    seeded = any(f.name == "seed" for f in fields(base_options))
    stats = TrialStats(method=method, machine=spec.name)
    for trial in range(num_trials):
        trial_options = base_options
        if seeded and vary_seed:
            trial_options = replace(base_options,
                                    seed=seed_base + trial)
        result = connected_components(graph, method, machine=spec,
                                      options=trial_options)
        if verify:
            validate_against_reference(graph, result)
        timing = simulate_run_time(result.trace, spec,
                                   graph.num_vertices)
        stats.trials.append(timing.total_ms)
        stats.iterations.append(result.num_iterations)
    stats.verified = verify
    return stats

"""Evaluation harness: one driver per paper table/figure."""

from .paper import (
    fig1_speedup_summary,
    fig3_dolp_convergence,
    fig5_work_reduction,
    fig6_hw_counters,
    fig7_8_convergence_comparison,
    fig9_10_ablation,
    table1_giant_component,
    table4_execution_times,
    table5_iterations,
    table6_initial_push,
    table7_threshold,
)
from .protocol import TrialStats, run_trials
from .report import generate_report
from .routing import auto_routing_table, routing_regret_table
from .runner import ExperimentRun, clear_cache, timed_run
from .tables import format_table

__all__ = [
    "ExperimentRun",
    "timed_run",
    "clear_cache",
    "format_table",
    "TrialStats",
    "run_trials",
    "generate_report",
    "auto_routing_table",
    "routing_regret_table",
    "fig1_speedup_summary",
    "table1_giant_component",
    "table4_execution_times",
    "table5_iterations",
    "fig3_dolp_convergence",
    "fig5_work_reduction",
    "fig6_hw_counters",
    "fig7_8_convergence_comparison",
    "table6_initial_push",
    "table7_threshold",
    "fig9_10_ablation",
]

#!/usr/bin/env python
"""Exploring the ConnectIt design space (paper Related Work).

The paper wanted to compare against ConnectIt — a framework that
composes a cheap *sampling* phase (merge most of the giant component)
with a *finish* phase (complete the rest) — but could not build it.
This example runs the reimplemented design space on a skewed surrogate
and shows where Afforest and Thrifty sit inside it.

Run:  python examples/connectit_design_space.py
"""

from repro.connectit import connectit_cc, connectit_design_space
from repro.core import thrifty_cc
from repro.baselines import afforest_cc
from repro.graph import load
from repro.instrument import simulate_run_time
from repro.parallel import SKYLAKEX
from repro.validate import same_partition


def explore(name: str = "SK", scale: float = 0.5) -> None:
    graph = load(name, scale)
    print(f"dataset {name} (surrogate): |V|={graph.num_vertices}, "
          f"|E|={graph.num_undirected_edges}")
    print()

    rows = []
    reference = thrifty_cc(graph, dataset=name)
    rows.append(("thrifty (this paper)", reference))
    rows.append(("afforest (standalone)", afforest_cc(graph,
                                                      dataset=name)))
    for sampling, finish in connectit_design_space():
        r = connectit_cc(graph, sampling=sampling, finish=finish,
                         dataset=name)
        assert same_partition(reference.labels, r.labels)
        rows.append((f"{sampling:>5} + {finish}", r))

    timed = []
    for label, result in rows:
        ms = simulate_run_time(result.trace, SKYLAKEX,
                               graph.num_vertices).total_ms
        timed.append((ms, label, result.counters().edges_processed))
    timed.sort()

    print(f"{'rank':>4} {'configuration':>28} {'sim ms':>9} "
          f"{'edges processed':>16}")
    for i, (ms, label, edges) in enumerate(timed, 1):
        print(f"{i:4d} {label:>28} {ms:9.3f} {edges:16d}")
    print()
    fewest = min(timed, key=lambda t: t[2])
    print("=> 'kout + skip-giant' is Afforest expressed in the")
    print("   framework, and the 'thrifty-pull' finishes import the")
    print("   paper's zero-convergence idea into ConnectIt.")
    print(f"   Fewest edges processed: {fewest[1].strip()} "
          f"({fewest[2]} edges) — on this compressed surrogate,")
    print("   edge-thrift and simulated time can disagree because a")
    print("   whole-graph vectorized pass parallelizes better than")
    print("   the pointer-chasing finds; at the paper's billion-edge")
    print("   scale the edge counts dominate (see EXPERIMENTS.md).")


if __name__ == "__main__":
    explore()

#!/usr/bin/env python
"""Structure-awareness demo: where Thrifty wins and where it loses.

The paper's key claim is *structure-aware* performance: Thrifty
exploits skewed degrees + a giant component, so it excels on web/social
graphs but loses to disjoint-set algorithms on road networks (high
diameter, uniform degrees).  This example reproduces that contrast on
two surrogates and explains it from the traces.

Run:  python examples/web_crawl_vs_roads.py
"""

from repro.graph import load
from repro import connected_components, SKYLAKEX
from repro.graph import (
    degree_stats,
    estimate_diameter,
    is_skewed,
)
from repro.instrument import Direction, simulate_run_time


def profile(name: str, scale: float) -> None:
    graph = load(name, scale)
    stats = degree_stats(graph)
    print(f"--- {name}: |V|={graph.num_vertices}, "
          f"|E|={graph.num_undirected_edges} ---")
    print(f"skewed: {is_skewed(graph)}  max degree: {stats.max}  "
          f"diameter (est.): {estimate_diameter(graph)}")

    rows = []
    for method in ("thrifty", "dolp", "afforest", "jt"):
        r = connected_components(graph, method, dataset=name)
        t = simulate_run_time(r.trace, SKYLAKEX, graph.num_vertices)
        rows.append((method, t.total_ms, r.num_iterations,
                     r.counters().edges_processed))
    rows.sort(key=lambda x: x[1])
    print(f"{'rank':>4} {'method':>9} {'sim ms':>9} {'iters':>6} "
          f"{'edges':>10}")
    for i, (method, ms, iters, edges) in enumerate(rows, 1):
        print(f"{i:4d} {method:>9} {ms:9.3f} {iters:6d} {edges:10d}")
    winner = rows[0][0]
    print(f"winner: {winner}")

    # Why: inspect Thrifty's schedule.
    r = connected_components(graph, "thrifty", dataset=name)
    dirs = [rec.direction for rec in r.trace.iterations]
    pushes = sum(1 for d in dirs if d == Direction.PUSH)
    pulls = sum(1 for d in dirs
                if d in (Direction.PULL, Direction.PULL_FRONTIER))
    print(f"thrifty schedule: {pulls} pulls + {pushes} pushes "
          f"({len(dirs)} iterations total)")
    print()
    return winner


if __name__ == "__main__":
    web_winner = profile("SK", scale=0.5)     # web crawl: skewed
    # Roads need full scale: compressing them further also compresses
    # the diameter that makes label propagation lose.
    road_winner = profile("USRd", scale=1.0)   # road network: uniform
    print("=> On the skewed web graph label propagation converges in a")
    print("   handful of cheap iterations; on the road network the")
    print("   wavefront needs ~diameter iterations, so a single-pass")
    print("   union-find wins — exactly the paper's Table IV contrast.")

#!/usr/bin/env python
"""Quickstart: connected components with Thrifty Label Propagation.

Builds a small skewed-degree graph, runs Thrifty and every baseline,
validates the results against each other, and shows the execution
trace and simulated-time instrumentation the library produces.

Run:  python examples/quickstart.py
"""

from repro import ALGORITHMS, SKYLAKEX, connected_components, same_partition
from repro.graph import build_graph, from_pairs, rmat_graph
from repro.instrument import simulate_run_time


def tiny_graph_demo() -> None:
    """CC on a hand-made graph: two components."""
    print("== tiny graph ==")
    #   0 - 1 - 2      3 - 4
    graph = build_graph(from_pairs([(0, 1), (1, 2), (3, 4)]))
    result = connected_components(graph, method="thrifty")
    print(f"labels: {result.labels.tolist()}")
    print(f"components: {result.num_components}  (expected 2)")
    # Canonical labels name each component by its smallest vertex.
    print(f"canonical: {result.canonical_labels().tolist()}")
    print()


def skewed_graph_demo() -> None:
    """All seven algorithms on a power-law RMAT graph."""
    print("== RMAT graph (2^12 vertices, skewed degrees) ==")
    graph = rmat_graph(12, 16, seed=42)
    print(f"graph: {graph}")

    reference = None
    for method in sorted(ALGORITHMS):
        result = connected_components(graph, method, machine=SKYLAKEX)
        timing = simulate_run_time(result.trace, SKYLAKEX,
                                   graph.num_vertices)
        counters = result.counters()
        edge_pct = 100 * counters.edges_processed / graph.num_edges
        print(f"  {method:>8}: {result.num_components:4d} components, "
              f"{result.num_iterations:3d} iterations, "
              f"{edge_pct:7.1f}% of |E| processed, "
              f"{timing.total_ms:8.3f} simulated ms")
        if reference is None:
            reference = result
        else:
            assert same_partition(reference, result), method
    print("all algorithms agree.")
    print()


def trace_demo() -> None:
    """Peek inside a Thrifty run: the per-iteration trace."""
    print("== Thrifty execution trace ==")
    graph = rmat_graph(12, 16, seed=42)
    result = connected_components(graph, "thrifty")
    print(f"{'iter':>4} {'direction':>14} {'density':>9} "
          f"{'active':>7} {'changed':>8} {'converged':>10}")
    for rec in result.trace.iterations:
        print(f"{rec.index:4d} {rec.direction.value:>14} "
              f"{rec.density:9.4f} {rec.active_vertices:7d} "
              f"{rec.changed_vertices:8d} "
              f"{100 * rec.converged_fraction:9.1f}%")


if __name__ == "__main__":
    tiny_graph_demo()
    skewed_graph_demo()
    trace_demo()

#!/usr/bin/env python
"""Paper Figure 2, executed: why initial label placement matters.

Figure 2 shows a 7-vertex graph where DO-LP needs as many iterations
as the graph's diameter because the smallest label starts at fringe
vertex A, creating repeated wavefronts.  This script executes the
pseudocode references step by step on that exact graph and prints the
label state after every iteration, for DO-LP and for Thrifty's
zero-planted variant.

Run:  python examples/figure2_walkthrough.py
"""

import numpy as np

from repro.graph import build_graph, from_pairs

NAMES = "ABCDEFG"

# The Figure 2 graph: A-B, B-C, C-D, C-E, D-E, D-F, E-F, E-G, F-G.
EDGES = [(0, 1), (1, 2), (2, 3), (2, 4), (3, 4),
         (3, 5), (4, 5), (4, 6), (5, 6)]


def show(labels) -> str:
    return "  ".join(f"{NAMES[v]}:{int(l)}"
                     for v, l in enumerate(labels))


def dolp_walkthrough(graph) -> None:
    """Synchronous LP with identity labels (the Figure 2 run)."""
    print("== DO-LP (identity labels; label 0 starts at fringe A) ==")
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    print(f"  init: {show(labels)}")
    iteration = 0
    while True:
        iteration += 1
        new = labels.copy()
        for v in range(n):
            for u in graph.neighbors(v):
                if labels[u] < new[v]:
                    new[v] = labels[u]
        if np.array_equal(new, labels):
            break
        labels = new
        print(f"  after iteration {iteration}: {show(labels)}")
    print(f"  converged after {iteration - 1} label-changing "
          f"iterations (graph diameter: 4)")
    print()


def thrifty_walkthrough(graph) -> None:
    """Zero planted at the max-degree (core) vertex E."""
    print("== Thrifty (zero planted at the hub) ==")
    n = graph.num_vertices
    hub = graph.max_degree_vertex()
    print(f"  max-degree vertex: {NAMES[hub]} "
          f"(degree {graph.degree(hub)})")
    labels = np.arange(1, n + 1, dtype=np.int64)
    labels[hub] = 0
    print(f"  init (Zero Planting): {show(labels)}")

    # Initial Push: one hop from the hub.
    for u in graph.neighbors(hub):
        if labels[hub] < labels[u]:
            labels[u] = labels[hub]
    print(f"  after Initial Push:   {show(labels)}")

    iteration = 1
    while True:
        iteration += 1
        changed = False
        new = labels.copy()
        for v in range(n):
            if labels[v] == 0:       # Zero Convergence: skip
                continue
            for u in graph.neighbors(v):
                if labels[u] < new[v]:
                    new[v] = labels[u]
                if new[v] == 0:      # Zero Convergence: break
                    break
        changed = not np.array_equal(new, labels)
        labels = new
        if not changed:
            break
        print(f"  after iteration {iteration}:    {show(labels)}")
    print(f"  converged after {iteration - 1} label-changing "
          f"iterations — the hub floods the core first, then the")
    print("  fringe, instead of re-propagating wavefronts.")


if __name__ == "__main__":
    graph = build_graph(from_pairs(EDGES), drop_zero_degree=False)
    dolp_walkthrough(graph)
    thrifty_walkthrough(graph)

#!/usr/bin/env python
"""Social-network scenario: community reachability analysis.

The paper motivates CC as a building block for graph analytics on
social networks.  This example mirrors a realistic pipeline:

1. generate a Twitter-like follower graph (skewed degrees, a giant
   component, dust of isolated cliques);
2. find the connected components with Thrifty;
3. report the audience-reachability statistics an analyst would want
   (giant-component share, isolated-community histogram);
4. compare against Afforest, the strongest disjoint-set baseline,
   on both of the paper's machines.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import EPYC, SKYLAKEX, connected_components, same_partition
from repro.graph import load
from repro.graph import degree_stats
from repro.instrument import simulate_run_time


def analyze(name: str = "Twtr", scale: float = 0.5) -> None:
    graph = load(name, scale)
    stats = degree_stats(graph)
    print(f"dataset {name} (surrogate): |V|={graph.num_vertices}, "
          f"|E|={graph.num_undirected_edges}")
    print(f"degrees: max={stats.max}, mean={stats.mean:.1f}, "
          f"gini={stats.gini:.2f}, "
          f"top-1% edge share={100 * stats.top1pct_edge_share:.0f}%")
    print()

    # --- components with Thrifty --------------------------------------
    result = connected_components(graph, "thrifty", dataset=name)
    sizes = result.component_sizes()
    n = graph.num_vertices
    print(f"components: {result.num_components}")
    print(f"giant component: {sizes[0]} vertices "
          f"({100 * sizes[0] / n:.1f}% of the network)")

    # Audience reachability: a message seeded anywhere in the giant
    # component can reach this share of users.
    others = sizes[1:]
    if others.size:
        print(f"isolated communities: {others.size} "
              f"(largest {others[0]}, median {int(np.median(others))})")
    hist, edges = np.histogram(others, bins=[2, 3, 5, 9, 17, 10**9])
    labels = ["2", "3-4", "5-8", "9-16", "17+"]
    print("isolated-community size histogram:")
    for lab, count in zip(labels, hist):
        print(f"  {lab:>5}: {count}")
    print()

    # --- Thrifty vs Afforest on both machines -------------------------
    print(f"{'machine':>9} {'algorithm':>9} {'sim ms':>9} "
          f"{'edges processed':>16}")
    for machine in (SKYLAKEX, EPYC):
        for method in ("thrifty", "afforest"):
            r = connected_components(graph, method, machine=machine,
                                     dataset=name)
            assert same_partition(r, result)
            t = simulate_run_time(r.trace, machine, n)
            print(f"{machine.name:>9} {method:>9} {t.total_ms:9.3f} "
                  f"{r.counters().edges_processed:16d}")


if __name__ == "__main__":
    analyze()

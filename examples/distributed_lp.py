#!/usr/bin/env python
"""Distributed label propagation: the paper's Section VII direction.

The paper argues LP's SpMV structure is what lets CC scale to
distributed memory (where disjoint-set algorithms have failed [26]),
and proposes applying Thrifty's ideas there as future work.  This
example runs the simulated BSP implementation and measures what
matters in a distributed setting — supersteps and communication
volume — with and without the Thrifty-style optimizations and the
fabric's sender-side combining, then races distributed FastSV on the
same fabric.

Run:  python examples/distributed_lp.py
"""

from repro.distributed import DistributedOptions, distributed_cc
from repro.graph import load
from repro.validate import same_partition


def compare(name: str = "LJGrp", scale: float = 0.5) -> None:
    graph = load(name, scale)
    print(f"dataset {name} (surrogate): |V|={graph.num_vertices}, "
          f"|E|={graph.num_undirected_edges}")
    print()
    print(f"{'config':>34} {'ranks':>6} {'steps':>6} "
          f"{'messages':>10} {'updates':>10} {'model MB':>9}")

    baseline_labels = None
    for ranks in (4, 16, 64):
        naive = DistributedOptions(
            num_ranks=ranks, zero_planting=False,
            zero_convergence=False, dedup_sends=False, combining=False)
        thrifty_style = DistributedOptions(
            num_ranks=ranks, zero_planting=True,
            zero_convergence=True, dedup_sends=True, combining=False)
        combining = DistributedOptions(num_ranks=ranks, combining=True)
        fastsv = DistributedOptions(num_ranks=ranks,
                                    algorithm="fastsv")
        for label, opts in (("naive broadcast LP", naive),
                            ("thrifty-style (plant+zero+dedup)",
                             thrifty_style),
                            ("thrifty-style + combining", combining),
                            ("distributed FastSV", fastsv)):
            r = distributed_cc(graph, opts)
            if baseline_labels is None:
                baseline_labels = r.labels
            else:
                assert same_partition(baseline_labels, r.labels)
            c = r.extras["comm"]
            print(f"{label:>34} {ranks:6d} {c.supersteps:6d} "
                  f"{c.messages:10d} {c.updates:10d} "
                  f"{c.modeled_bytes / 1e6:9.2f}")
        print()

    print("=> change-tracked sends + zero convergence cut most of the")
    print("   payload; sender-side combining batches what remains into")
    print("   one envelope per rank pair, so wire messages collapse to")
    print("   supersteps x neighbouring-rank pairs.")


if __name__ == "__main__":
    compare()
